"""Property tests for the harder fault models: correlated crashes and
Byzantine message corruption.

* :class:`CorrelatedCrash` — victim sets hit the requested size, ball mode
  stays connected on connected graphs, shard mode crashes one block-aligned
  contiguous node range, and selection is deterministic per bound seed;
* :func:`corrupt_payload` — the pure Byzantine rewrite covers every shipped
  message vocabulary, is an involution on the symmetric pairs, and passes
  unknown payloads through;
* **hook equivalence** — the Byzantine scenarios produce bit-identical
  metrics across every backend they register (reference hooks, engine
  hooks, dense corruption masks) in both fault modes, because the
  corruption *decision* runs on the shared ``fault_u01`` kernels and the
  *rewrite* is mirrored as per-slot semantic masks.
"""

import random

import pytest

from repro.local import Network
from repro.scenarios import (
    FORGED_PRIORITY,
    CorrelatedCrash,
    CorruptMessages,
    corrupt_payload,
    get_scenario,
    run_scenario,
)


def connected_graph(seed, n=40, extra=40):
    rng = random.Random(seed)
    adj = [[] for _ in range(n)]
    for i in range(1, n):  # random spanning tree keeps it connected
        j = rng.randrange(i)
        adj[i].append(j)
        adj[j].append(i)
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            adj[u].append(v)
            adj[v].append(u)
    return adj


def victims_of(pert, net, seed, fault_mode="replay"):
    bound = pert.bind(net, seed, fault_mode)
    return sorted(bound.crashes(pert.at_round))


class TestCorrelatedCrash:
    @pytest.mark.parametrize("mode", ["ball", "shard"])
    @pytest.mark.parametrize("fault_mode", ["replay", "mask"])
    def test_victim_count_and_schedule(self, mode, fault_mode):
        net = Network(connected_graph(1))
        for fraction in (0.1, 0.25, 0.5):
            pert = CorrelatedCrash(fraction, at_round=3, mode=mode)
            bound = pert.bind(net, 7, fault_mode)
            victims = sorted(bound.crashes(3))
            assert len(victims) == max(1, round(fraction * net.n))
            assert bound.crashes(2) == () and bound.crashes(4) == ()
            assert bound.quiet_after == 3
            # Deterministic per bound seed, no hidden global state.
            assert victims == victims_of(pert, net, 7, fault_mode)

    def test_ball_mode_victims_are_connected(self):
        for seed in range(5):
            net = Network(connected_graph(seed))
            victims = victims_of(CorrelatedCrash(0.3, mode="ball"), net, seed)
            assert victims, "a positive fraction always crashes someone"
            inside = set(victims)
            reached = {victims[0]}
            frontier = [victims[0]]
            while frontier:
                v = frontier.pop()
                for w in net.adjacency[v]:
                    if w in inside and w not in reached:
                        reached.add(w)
                        frontier.append(w)
            assert reached == inside

    def test_shard_mode_is_a_block_aligned_range(self):
        net = Network(connected_graph(2))
        for seed in range(8):
            victims = victims_of(CorrelatedCrash(0.25, mode="shard"), net, seed)
            count = max(1, round(0.25 * net.n))
            assert victims == list(range(victims[0], victims[0] + count))
            assert victims[0] % count == 0

    def test_zero_fraction_crashes_nobody(self):
        net = Network(connected_graph(3))
        bound = CorrelatedCrash(0.0, at_round=2).bind(net, 1)
        assert bound.crashes(2) == ()

    def test_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            CorrelatedCrash(1.5)
        with pytest.raises(ValueError, match="mode"):
            CorrelatedCrash(0.1, mode="rack")
        with pytest.raises(ValueError, match="at_round"):
            CorrelatedCrash(0.1, at_round=0)


class TestCorruptPayload:
    def test_symmetric_pairs_are_involutions(self):
        for msg in (0, 1, ("join",), ("stay",), ("flip", 3), ("ok", 3),
                    ("prop", True, 2), ("prop", False, 2)):
            assert corrupt_payload(corrupt_payload(msg)) == msg
            assert corrupt_payload(msg) != msg

    def test_forged_priority_beats_any_honest_draw(self):
        assert corrupt_payload(("prio", (0.999, 10))) == ("prio", FORGED_PRIORITY)
        assert FORGED_PRIORITY > (1.0, 1 << 61)

    def test_unknown_payloads_pass_through(self):
        for msg in (None, 2, "hello", ("unknown", 1), ()):
            assert corrupt_payload(msg) == msg

    def test_corruption_window_and_keying(self):
        net = Network(connected_graph(4))
        bound = CorruptMessages(p=0.5, from_round=2, until_round=4).bind(net, 9)
        assert bound.quiet_after == 4
        assert not any(bound.corrupts(1, s, 0) for s in range(net.n))
        assert not any(bound.corrupts(5, s, 0) for s in range(net.n))
        active = [bound.corrupts(3, s, 0) for s in range(net.n)]
        assert any(active) and not all(active)
        # Scalar decisions equal the vectorized kernel's.
        import numpy as np

        senders = np.arange(net.n, dtype=np.int64)
        mask = bound.corrupts_mask(3, senders, np.zeros(net.n, dtype=np.int64))
        assert mask.tolist() == active
        assert bound.corrupts_mask(1, senders, senders) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="p must"):
            CorruptMessages(p=-0.1)
        with pytest.raises(ValueError, match="until_round"):
            CorruptMessages(from_round=5, until_round=4)


class TestByzantineHookEquivalence:
    """One corruption schedule => identical metrics on every backend."""

    @pytest.mark.parametrize(
        "name", ["luby/byzantine", "sinkless/byzantine", "splitting/byzantine",
                 "luby/crash-correlated", "luby/crash-shard"],
    )
    @pytest.mark.parametrize("fault_mode", ["replay", "mask"])
    def test_backends_agree(self, name, fault_mode):
        sc = get_scenario(name)
        runs = [
            run_scenario(sc, n=64, seed=3, backend=backend, coins="replay",
                         fault_mode=fault_mode)
            for backend in sc.backends
        ]
        keys = [k for k in runs[0] if not k.endswith("_seconds")]
        for backend, m in zip(sc.backends[1:], runs[1:]):
            for k in keys:
                assert m[k] == runs[0][k], (name, backend, fault_mode, k)

    def test_corruption_changes_outcomes(self):
        clean = run_scenario("luby/crash", n=64, seed=3, backend="engine")
        byz = run_scenario("luby/byzantine", n=64, seed=3, backend="engine")
        # Same base pipeline, different fault family: the Byzantine channel
        # must actually perturb the execution, not just relabel it.
        assert (byz["rounds"], byz["violations"], byz["mis_size"]) != (
            clean["rounds"], clean["violations"], clean["mis_size"],
        )
