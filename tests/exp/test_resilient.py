"""The fault-tolerant execution layer (`repro.exp.resilient`).

Covers the five tentpole behaviors against *real* process-pool workers:
per-task timeouts (hung workers killed, pool rebuilt), bounded retry with
backoff + poison quarantine, pool self-healing on worker death with exact
crash attribution, incremental `trials.jsonl` checkpointing with resume,
and graceful SIGINT drain with a failure manifest.
"""

import json
import random
import signal

import pytest

from repro.exp import ExperimentSpec, RetryPolicy, run_sweep
from repro.exp.resilient import (
    CRASH_ERROR,
    append_checkpoint,
    load_checkpoint,
)
from repro.exp.runner import TrialResult
from repro.exp.workloads import (
    chaos_attempts,
    chaos_crash,
    chaos_exit,
    chaos_flaky,
    chaos_hang,
)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=3.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(1, rng) == 1.0
        assert policy.delay(2, rng) == 2.0
        assert policy.delay(3, rng) == 3.0  # capped
        assert policy.delay(4, rng) == 3.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(1, 5):
            base = min(1.0 * 2 ** (attempt - 1), 8.0)
            for _ in range(20):
                d = policy.delay(attempt, rng)
                assert base <= d <= base * 1.5

    def test_zero_base_delay_is_immediate(self):
        assert RetryPolicy(base_delay=0.0).delay(3, random.Random(0)) == 0.0

    def test_retryable_predicate(self):
        policy = RetryPolicy(retryable=lambda e: e.startswith("Timeout"))
        assert policy.is_retryable("Timeout: exceeded 1s deadline")
        assert not policy.is_retryable("RuntimeError: boom")
        assert RetryPolicy().is_retryable("anything")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class TestCheckpoint:
    def trial(self, name="e", seed=0, error=None, attempts=1):
        return TrialResult(name, seed, {"p": 1}, {"v": seed}, elapsed=0.1,
                           error=error, attempts=attempts)

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        rows = [self.trial(seed=s) for s in range(3)]
        append_checkpoint(path, rows)
        loaded = load_checkpoint(path)
        assert [(t.experiment, t.seed, t.metrics) for t in loaded] == [
            (t.experiment, t.seed, t.metrics) for t in rows
        ]
        assert all(t.attempts == 1 for t in loaded)

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.jsonl") == []

    def test_torn_tail_sealed_and_skipped(self, tmp_path, capsys):
        path = tmp_path / "trials.jsonl"
        append_checkpoint(path, [self.trial(seed=0)])
        with path.open("a") as fh:  # simulate a kill mid-append
            fh.write('{"experiment": "e", "seed": 1, "elaps')
        append_checkpoint(path, [self.trial(seed=2)])
        loaded = load_checkpoint(path)
        assert sorted(t.seed for t in loaded) == [0, 2]
        assert "corrupt checkpoint line" in capsys.readouterr().err

    def test_duplicate_keys_last_wins(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        append_checkpoint(path, [self.trial(seed=0, error="Timeout: old")])
        append_checkpoint(path, [self.trial(seed=0, attempts=2)])
        loaded = load_checkpoint(path)
        assert len(loaded) == 1
        assert loaded[0].ok and loaded[0].attempts == 2

    def test_error_rows_roundtrip(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        append_checkpoint(path, [self.trial(error=CRASH_ERROR, attempts=3)])
        loaded = load_checkpoint(path)
        assert loaded[0].error == CRASH_ERROR and loaded[0].attempts == 3


class TestInlineRetry:
    def test_flaky_healed_and_attempts_recorded(self, tmp_path):
        spec = ExperimentSpec(
            "flaky", chaos_flaky,
            {"succeed_after": 2, "state_dir": str(tmp_path), "label": "a"},
            seeds=(0,), retry=FAST_RETRY,
        )
        sweep = run_sweep([spec], workers=0)
        trial = sweep.trials[0]
        assert trial.ok and trial.attempts == 2
        assert trial.metrics["attempts_used"] == 2
        assert chaos_attempts(str(tmp_path), "a", 0) == 2

    def test_poison_quarantined_after_budget(self, tmp_path):
        spec = ExperimentSpec(
            "poison", chaos_flaky,
            {"succeed_after": 99, "state_dir": str(tmp_path), "label": "b"},
            seeds=(0,), retry=FAST_RETRY,
        )
        sweep = run_sweep([spec], workers=0)
        trial = sweep.trials[0]
        assert not trial.ok and trial.attempts == 3
        assert "flaky failure 3/99" in trial.error
        assert chaos_attempts(str(tmp_path), "b", 0) == 3  # not an endless loop

    def test_non_retryable_error_fails_once(self, tmp_path):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0,
                             retryable=lambda e: e.startswith("Timeout"))
        spec = ExperimentSpec(
            "crash", chaos_crash,
            {"state_dir": str(tmp_path), "label": "c"},
            seeds=(0,), retry=policy,
        )
        sweep = run_sweep([spec], workers=0)
        trial = sweep.trials[0]
        assert not trial.ok and trial.attempts == 1
        assert chaos_attempts(str(tmp_path), "c", 0) == 1

    def test_no_policy_means_single_attempt(self):
        def boom(seed):
            raise RuntimeError("boom")

        sweep = run_sweep([ExperimentSpec("e", boom, seeds=(0, 1))], workers=0)
        assert all(not t.ok and t.attempts == 1 for t in sweep.trials)

    def test_batch_retry_inline(self, tmp_path):
        def flaky_batch(seeds, state_dir):
            n = chaos_flaky(seed=100, succeed_after=2, state_dir=state_dir,
                            label="bb")["attempts_used"]
            return [{"value": s, "batch_attempt": n} for s in seeds]

        spec = ExperimentSpec(
            "batch", flaky_batch, {"state_dir": str(tmp_path)}, seeds=(0, 1, 2),
            batch_fn=flaky_batch, trial_batch=3, retry=FAST_RETRY,
        )
        sweep = run_sweep([spec], workers=0)
        assert all(t.ok and t.attempts == 2 for t in sweep.trials)


class TestCheckpointResume:
    def spec(self, tmp_path, label="r", seeds=range(6)):
        return ExperimentSpec(
            "cell", chaos_flaky,
            {"succeed_after": 1, "state_dir": str(tmp_path), "label": label},
            seeds=seeds,
        )

    def test_checkpoint_written_incrementally(self, tmp_path):
        ck = tmp_path / "trials.jsonl"
        run_sweep([self.spec(tmp_path, seeds=range(3))], workers=0, checkpoint=str(ck))
        loaded = load_checkpoint(ck)
        assert sorted(t.seed for t in loaded) == [0, 1, 2]

    def test_resume_skips_completed_trials(self, tmp_path):
        ck = str(tmp_path / "trials.jsonl")
        run_sweep([self.spec(tmp_path, seeds=range(3))], workers=0, checkpoint=ck)
        sweep = run_sweep([self.spec(tmp_path)], workers=0, checkpoint=ck, resume=ck)
        assert sorted(t.seed for t in sweep.trials) == [0, 1, 2, 3, 4, 5]
        assert all(t.ok for t in sweep.trials)
        # attempt counters: completed seeds were NOT re-executed
        assert [chaos_attempts(str(tmp_path), "r", s) for s in range(6)] == [1] * 6

    def test_resume_everything_done_runs_nothing(self, tmp_path):
        ck = str(tmp_path / "trials.jsonl")
        run_sweep([self.spec(tmp_path)], workers=0, checkpoint=ck)
        sweep = run_sweep([self.spec(tmp_path)], workers=0, resume=ck)
        assert len(sweep.trials) == 6
        assert [chaos_attempts(str(tmp_path), "r", s) for s in range(6)] == [1] * 6

    def test_resume_ignores_foreign_experiments(self, tmp_path):
        ck = str(tmp_path / "trials.jsonl")
        append_checkpoint(ck, [TrialResult("other", 0, {}, {"v": 1}, 0.0)])
        sweep = run_sweep([self.spec(tmp_path, seeds=(0,))], workers=0, resume=ck)
        assert [(t.experiment, t.seed) for t in sweep.trials] == [("cell", 0)]

    def test_batched_cell_narrowed_to_missing_seeds(self, tmp_path):
        ran = tmp_path / "ran.txt"

        spec = ExperimentSpec(
            "cell", batch_recording_workload,
            {"path": str(ran)}, seeds=range(6),
            batch_fn=batch_recording_workload, trial_batch=6,
        )
        ck = str(tmp_path / "trials.jsonl")
        append_checkpoint(ck, [
            TrialResult("cell", s, {}, {"value": s}, 0.0) for s in (0, 2, 4)
        ])
        sweep = run_sweep([spec], workers=0, resume=ck)
        assert sorted(t.seed for t in sweep.trials) == [0, 1, 2, 3, 4, 5]
        # the batch workload only saw the missing seeds
        assert json.loads(ran.read_text()) == [1, 3, 5]

    def test_resume_into_fresh_checkpoint_carries_rows_over(self, tmp_path):
        old = str(tmp_path / "old.jsonl")
        new = str(tmp_path / "new.jsonl")
        run_sweep([self.spec(tmp_path, seeds=range(3))], workers=0, checkpoint=old)
        run_sweep([self.spec(tmp_path)], workers=0, checkpoint=new, resume=old)
        assert sorted(t.seed for t in load_checkpoint(new)) == list(range(6))


def batch_recording_workload(seeds, path):
    """Records which seeds it was handed (module-level: picklable)."""
    with open(path, "w") as fh:
        json.dump(list(seeds), fh)
    return [{"value": s} for s in seeds]


def ok_workload(seed):
    return {"value": seed}


class TestPooledFaults:
    """Real process-pool workers, really killed."""

    def test_timeout_kills_hung_worker_and_sweep_completes(self, tmp_path):
        specs = [
            ExperimentSpec(
                "hang", chaos_hang,
                {"hang_seconds": 30.0, "state_dir": str(tmp_path), "label": "h"},
                seeds=(0,), timeout=1.0,
            ),
            ExperimentSpec("ok", ok_workload, seeds=(0, 1)),
        ]
        sweep = run_sweep(specs, workers=2)
        by_key = {(t.experiment, t.seed): t for t in sweep.trials}
        hang = by_key[("hang", 0)]
        assert not hang.ok and hang.error.startswith("Timeout")
        assert hang.elapsed >= 1.0
        assert by_key[("ok", 0)].ok and by_key[("ok", 1)].ok
        # the hung worker executed once and was not retried (no policy)
        assert chaos_attempts(str(tmp_path), "h", 0) == 1

    def test_worker_death_heals_pool_and_attributes_crash(self, tmp_path):
        specs = [
            ExperimentSpec(
                "exit", chaos_exit,
                {"state_dir": str(tmp_path), "label": "e"}, seeds=(0,),
            ),
            ExperimentSpec("ok", ok_workload, seeds=(0, 1, 2)),
        ]
        sweep = run_sweep(specs, workers=2)
        by_key = {(t.experiment, t.seed): t for t in sweep.trials}
        crash = by_key[("exit", 0)]
        assert not crash.ok and "BrokenProcessPool" in crash.error
        # innocent co-scheduled trials were exonerated and completed
        for s in range(3):
            assert by_key[("ok", s)].ok, by_key[("ok", s)].error

    def test_crash_retry_budget_quarantines_poison(self, tmp_path):
        spec = ExperimentSpec(
            "exit", chaos_exit,
            {"state_dir": str(tmp_path), "label": "q"}, seeds=(0,),
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        sweep = run_sweep([spec, ExperimentSpec("ok", ok_workload, seeds=(0,))],
                          workers=2)
        crash = next(t for t in sweep.trials if t.experiment == "exit")
        assert not crash.ok and "BrokenProcessPool" in crash.error
        assert crash.attempts == 2
        assert chaos_attempts(str(tmp_path), "q", 0) == 2

    def test_flaky_healed_across_pool_retries(self, tmp_path):
        spec = ExperimentSpec(
            "flaky", chaos_flaky,
            {"succeed_after": 2, "state_dir": str(tmp_path), "label": "p"},
            seeds=(0, 1), retry=RetryPolicy(max_attempts=3, base_delay=0.01),
        )
        sweep = run_sweep([spec], workers=2)
        assert all(t.ok and t.attempts == 2 for t in sweep.trials)

    def test_chaos_end_to_end_attribution(self, tmp_path):
        """The acceptance sweep: exit + hang + flaky + healthy cells all at
        once on real workers; every failure lands on the right trial."""
        sd = str(tmp_path)
        retry = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.1)
        specs = [
            ExperimentSpec("ok", chaos_flaky,
                           {"succeed_after": 1, "state_dir": sd, "label": "ok"},
                           seeds=(0, 1, 2), retry=retry),
            ExperimentSpec("flaky", chaos_flaky,
                           {"succeed_after": 2, "state_dir": sd, "label": "fl"},
                           seeds=(0,), retry=retry),
            ExperimentSpec("exit", chaos_exit,
                           {"state_dir": sd, "label": "ex"}, seeds=(0,),
                           retry=retry),
            ExperimentSpec("hang", chaos_hang,
                           {"hang_seconds": 30.0, "state_dir": sd, "label": "hg"},
                           seeds=(0,), timeout=1.5),
        ]
        sweep = run_sweep(specs, workers=2)
        by_key = {(t.experiment, t.seed): t for t in sweep.trials}
        assert len(by_key) == 6
        for s in range(3):
            assert by_key[("ok", s)].ok
            assert chaos_attempts(sd, "ok", s) == 1
        assert by_key[("flaky", 0)].ok
        assert chaos_attempts(sd, "fl", 0) == 2
        exit_t = by_key[("exit", 0)]
        assert not exit_t.ok and "BrokenProcessPool" in exit_t.error
        assert exit_t.attempts == 3  # retried to budget, then quarantined
        hang_t = by_key[("hang", 0)]
        assert not hang_t.ok and hang_t.error.startswith("Timeout")


class TestGracefulDrain:
    def test_sigint_drains_writes_manifest_and_resumes(self, tmp_path):
        sd = str(tmp_path)
        ck = str(tmp_path / "trials.jsonl")
        spec = ExperimentSpec(
            "cell", chaos_flaky,
            {"succeed_after": 1, "state_dir": sd, "label": "dr"},
            seeds=range(10),
        )
        completed = []

        def interrupt_after_two(trial):
            completed.append(trial)
            if len(completed) == 2:
                signal.raise_signal(signal.SIGINT)

        before = signal.getsignal(signal.SIGINT)
        sweep = run_sweep([spec], workers=2, checkpoint=ck,
                          progress=interrupt_after_two, drain_grace=2.0)
        assert signal.getsignal(signal.SIGINT) is before  # handler restored
        assert sweep.drained == "SIGINT"
        assert 2 <= len(sweep.trials) < 10
        manifest = json.loads((tmp_path / "trials.jsonl.manifest.json").read_text())
        assert manifest["drained"] == "SIGINT"
        assert manifest["completed"] == len(sweep.trials)
        done = {t.seed for t in sweep.trials}
        assert {e["seed"] for e in manifest["unfinished"]} == set(range(10)) - done

        resumed = run_sweep([spec], workers=2, checkpoint=ck, resume=ck)
        assert resumed.drained is None
        assert sorted(t.seed for t in resumed.trials) == list(range(10))
        assert all(t.ok for t in resumed.trials)
        # exactly-once: nothing the first sweep completed was re-executed
        assert [chaos_attempts(sd, "dr", s) for s in range(10)] == [1] * 10

    def test_partial_json_written_on_drain(self, tmp_path):
        out = tmp_path / "bench.json"
        spec = ExperimentSpec(
            "cell", chaos_flaky,
            {"succeed_after": 1, "state_dir": str(tmp_path), "label": "pj"},
            seeds=range(8),
        )

        fired = []

        def interrupt_first(trial):
            if not fired:
                fired.append(True)
                signal.raise_signal(signal.SIGINT)

        sweep = run_sweep([spec], workers=2, json_path=str(out),
                          progress=interrupt_first, drain_grace=2.0)
        data = json.loads(out.read_text())
        assert data["drained"] == "SIGINT"
        assert len(data["trials"]) == len(sweep.trials) >= 1
