"""The CI perf-regression gate (`benchmarks/check_regression.py`)."""

import importlib.util
import json
from pathlib import Path
from types import SimpleNamespace


def load_checker():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
    spec = importlib.util.spec_from_file_location("bench_check_regression", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def write_bench(path, solve=0.1, setup=0.0, experiment="mis/sparse@dense"):
    data = {
        "trials": [
            {
                "experiment": experiment,
                "seed": s,
                "params": {},
                "metrics": {"solve_seconds": solve},
                "elapsed": solve,
                "setup_seconds": setup,
                "error": None,
            }
            for s in (0, 1, 2)
        ]
    }
    path.write_text(json.dumps(data))


def write_history(path, solve=0.1, commit="baseline0000", experiment="mis/sparse@dense"):
    rows = [
        {
            "commit": commit,
            "experiment": experiment,
            "backend": experiment.rsplit("@", 1)[1] if "@" in experiment else "",
            "seed": s,
            "ok": True,
            "written_at": 1.0,
            "setup_seconds": 0.0,
            "metrics": {"solve_seconds": solve},
        }
        for s in (0, 1, 2)
    ]
    with path.open("w") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")


def args(tmp_path, threshold=0.30, min_seconds=0.01):
    return SimpleNamespace(
        history=str(tmp_path / "hist.jsonl"),
        current=[str(tmp_path / "BENCH_ci.json")],
        threshold=threshold,
        min_seconds=min_seconds,
    )


class TestRegressionGate:
    def test_passes_when_current_within_threshold(self, tmp_path, capsys):
        write_history(tmp_path / "hist.jsonl", solve=0.1)
        write_bench(tmp_path / "BENCH_ci.json", solve=0.11)
        checker = load_checker()
        assert checker.check(args(tmp_path)) == 0
        assert "no perf regressions" in capsys.readouterr().out

    def test_fails_on_regression_past_threshold(self, tmp_path, capsys):
        write_history(tmp_path / "hist.jsonl", solve=0.1)
        write_bench(tmp_path / "BENCH_ci.json", solve=0.2)  # +100%
        checker = load_checker()
        assert checker.check(args(tmp_path)) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_noise_floor_suppresses_tiny_cells(self, tmp_path):
        write_history(tmp_path / "hist.jsonl", solve=0.001)
        write_bench(tmp_path / "BENCH_ci.json", solve=0.005)  # 5x but ~ms
        checker = load_checker()
        assert checker.check(args(tmp_path)) == 0

    def test_bootstraps_green_without_history(self, tmp_path, capsys):
        write_bench(tmp_path / "BENCH_ci.json", solve=0.5)
        checker = load_checker()
        assert checker.check(args(tmp_path)) == 0
        assert "baseline will seed" in capsys.readouterr().out

    def test_green_when_no_current_artifacts(self, tmp_path):
        write_history(tmp_path / "hist.jsonl")
        checker = load_checker()
        assert checker.check(args(tmp_path)) == 0

    def test_unmatched_cell_reports_no_baseline(self, tmp_path, capsys):
        write_history(tmp_path / "hist.jsonl", experiment="mis/torus@dense")
        write_bench(tmp_path / "BENCH_ci.json", experiment="mis/sparse@dense")
        checker = load_checker()
        assert checker.check(args(tmp_path)) == 0
        assert "no baseline" in capsys.readouterr().out
