"""Sweep-level observability: the metrics snapshot and the pack/rng split."""

import json

from repro.exp import ExperimentSpec, run_sweep
from repro.exp.runner import TrialResult


def timed_workload(seed):
    return {
        "value": seed,
        "setup_seconds": 0.05,
        "pack_seconds": 0.03,
        "rng_seconds": 0.02,
    }


def plain_workload(seed):
    return {"value": seed, "setup_seconds": 0.04}


def failing_workload(seed):
    raise RuntimeError("boom")


class TestPackRngSplit:
    def test_reserved_channels_land_on_the_trial(self):
        sweep = run_sweep(
            [ExperimentSpec("e", timed_workload, {}, seeds=(0,))], workers=0
        )
        (trial,) = sweep.trials
        assert trial.setup_seconds == 0.05
        assert trial.pack_seconds == 0.03
        assert trial.rng_seconds == 0.02
        assert "pack_seconds" not in trial.metrics  # popped, not duplicated

    def test_pack_defaults_to_setup_when_workload_does_not_split(self):
        sweep = run_sweep(
            [ExperimentSpec("e", plain_workload, {}, seeds=(0,))], workers=0
        )
        (trial,) = sweep.trials
        assert trial.pack_seconds == trial.setup_seconds == 0.04
        assert trial.rng_seconds == 0.0

    def test_round_trip_and_old_row_migration(self):
        trial = TrialResult(
            experiment="e", seed=0, params={}, metrics={}, elapsed=1.0,
            setup_seconds=0.05, pack_seconds=0.03, rng_seconds=0.02,
        )
        row = trial.to_dict()
        assert row["pack_seconds"] == 0.03 and row["rng_seconds"] == 0.02
        assert TrialResult.from_dict(row) == trial
        # a pre-split row: pack falls back to setup, rng to zero
        old = {k: v for k, v in row.items()
               if k not in ("pack_seconds", "rng_seconds")}
        migrated = TrialResult.from_dict(old)
        assert migrated.pack_seconds == 0.05
        assert migrated.rng_seconds == 0.0

    def test_aggregate_includes_split_stats(self):
        sweep = run_sweep(
            [ExperimentSpec("e", timed_workload, {}, seeds=(0, 1))], workers=0
        )
        stats = sweep.summary()["e"]["metrics"]
        assert stats["pack_seconds"]["mean"] == 0.03
        assert stats["rng_seconds"]["mean"] == 0.02


class TestSweepMetricsSnapshot:
    def test_snapshot_counts_outcomes_and_times_cells(self):
        sweep = run_sweep(
            [
                ExperimentSpec("good", timed_workload, {}, seeds=(0, 1)),
                ExperimentSpec("bad", failing_workload, {}, seeds=(0,)),
            ],
            workers=0,
        )
        snap = sweep.metrics
        assert snap["counters"]["sweep.trials_completed"] == 2
        assert snap["counters"]["sweep.trials_failed"] == 1
        solve = snap["histograms"]["cell.good.solve_seconds"]
        assert solve["count"] == 2
        setup = snap["histograms"]["cell.good.setup_seconds"]
        assert abs(setup["mean"] - 0.07) < 1e-9  # setup + rng per trial

    def test_snapshot_serializes_with_the_sweep(self):
        sweep = run_sweep(
            [ExperimentSpec("e", timed_workload, {}, seeds=(0,))], workers=0
        )
        data = sweep.to_dict()
        assert data["metrics"]["counters"]["sweep.trials_completed"] == 1
        json.dumps(data, sort_keys=True)  # the BENCH json stays serializable

    def test_pooled_runs_count_executor_dispatches(self):
        sweep = run_sweep(
            [ExperimentSpec("e", timed_workload, {}, seeds=(0, 1, 2))],
            workers=1,
        )
        assert sweep.metrics["counters"]["executor.dispatches"] == 3

    def test_resume_skips_are_counted(self, tmp_path):
        checkpoint = tmp_path / "trials.jsonl"
        first = run_sweep(
            [ExperimentSpec("e", timed_workload, {}, seeds=(0, 1))],
            workers=0, checkpoint=str(checkpoint),
        )
        assert len(first.trials) == 2
        resumed = run_sweep(
            [ExperimentSpec("e", timed_workload, {}, seeds=(0, 1, 2))],
            workers=0, checkpoint=str(checkpoint), resume=str(checkpoint),
        )
        assert resumed.metrics["counters"]["sweep.resume_skips"] == 2
        # only the new seed actually completed this run
        assert resumed.metrics["counters"]["sweep.trials_completed"] == 1
