"""Tests for the multi-seed sweep runner and aggregation."""

import json
import math

import pytest

from repro.exp import ExperimentSpec, aggregate, run_sweep
from repro.exp.runner import TrialResult, _run_trial
from repro.exp.workloads import (
    build_topology,
    engine_throughput_workload,
    luby_mis_workload,
    scenario_engine,
    sinkless_workload,
    splitting_workload,
)


def metrics_workload(seed, base=10):
    return {"value": base + seed, "constant": 5, "label": "x"}


def failing_workload(seed):
    if seed == 1:
        raise RuntimeError("boom")
    return {"value": seed}


class TestSpec:
    def test_trials_fan_out(self):
        spec = ExperimentSpec("e", metrics_workload, {"base": 2}, seeds=(3, 4))
        trials = spec.trials()
        assert [t[3] for t in trials] == [3, 4]
        assert all(t[0] == "e" and t[2] == {"base": 2} for t in trials)

    def test_non_spec_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(["not-a-spec"], workers=0)


class TestInlineSweep:
    def test_metrics_and_ordering(self):
        specs = [
            ExperimentSpec("b", metrics_workload, {"base": 100}, seeds=(1, 0)),
            ExperimentSpec("a", metrics_workload, {}, seeds=(0,)),
        ]
        sweep = run_sweep(specs, workers=0)
        assert [(t.experiment, t.seed) for t in sweep.trials] == [
            ("a", 0),
            ("b", 0),
            ("b", 1),
        ]
        assert sweep.workers == 0
        assert all(t.ok and t.elapsed >= 0 for t in sweep.trials)
        assert sweep.trials[1].metrics["value"] == 100

    def test_failure_is_recorded_not_raised(self):
        sweep = run_sweep(
            [ExperimentSpec("f", failing_workload, {}, seeds=(0, 1, 2))], workers=0
        )
        errors = [t for t in sweep.trials if not t.ok]
        assert len(errors) == 1 and errors[0].seed == 1
        assert "RuntimeError: boom" in errors[0].error
        summary = sweep.summary()["f"]
        assert summary["ok"] == 2 and summary["failed"] == 1
        assert summary["metrics"]["value"]["n"] == 2

    def test_non_dict_result_wrapped(self):
        result = _run_trial("x", lambda seed: seed * 2, {}, 3)
        assert result.metrics == {"result": 6}

    def test_setup_seconds_reserved_metric(self):
        # The reserved key moves to the record field and out of metrics, so
        # one-off engine packing is not averaged into per-trial solve cost.
        result = _run_trial("x", lambda seed: {"v": 1, "setup_seconds": 2.5}, {}, 0)
        assert result.setup_seconds == 2.5
        assert "setup_seconds" not in result.metrics
        assert result.to_dict()["setup_seconds"] == 2.5
        summary = aggregate([result])["x"]
        assert summary["metrics"]["setup_seconds"]["max"] == 2.5


class TestAggregate:
    def test_stats_values(self):
        trials = [
            TrialResult("e", s, {}, {"v": float(v)}, elapsed=0.0)
            for s, v in enumerate((1, 2, 3, 4))
        ]
        stats = aggregate(trials)["e"]["metrics"]["v"]
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1 and stats["max"] == 4
        assert stats["std"] == pytest.approx(math.sqrt(1.25))
        assert stats["n"] == 4

    def test_non_numeric_and_bool_skipped(self):
        trials = [TrialResult("e", 0, {}, {"s": "str", "b": True, "v": 1}, 0.0)]
        metrics = aggregate(trials)["e"]["metrics"]
        assert "s" not in metrics and "b" not in metrics and "v" in metrics

    def test_all_failed_cell(self):
        trials = [
            TrialResult("dead", s, {"p": 1}, {}, elapsed=0.1, error="RuntimeError: x")
            for s in range(3)
        ]
        entry = aggregate(trials)["dead"]
        assert entry["ok"] == 0 and entry["failed"] == 3
        assert entry["errors"] == ["RuntimeError: x"] * 3
        assert entry["seeds"] == [0, 1, 2]
        # no successful trials: the reserved timing stats are empty dicts,
        # and no workload metric appears at all
        assert entry["metrics"]["elapsed"] == {}
        assert entry["metrics"]["setup_seconds"] == {}
        assert set(entry["metrics"]) == {
            "elapsed", "setup_seconds", "pack_seconds", "rng_seconds",
        }

    def test_mixed_batch_and_per_seed_cells_same_name(self):
        # A per-seed cell and a batched cell may share one experiment name
        # (e.g. a resumed sweep re-running a narrowed chunk); aggregation
        # groups them into one summary over the union of seeds.
        per_seed = run_sweep(
            [ExperimentSpec("cell", metrics_workload, {"base": 10}, seeds=(0, 1))],
            workers=0,
        ).trials
        batched = run_sweep(
            [
                ExperimentSpec(
                    "cell", metrics_workload, {"base": 10}, seeds=(2, 3),
                    batch_fn=batch_metrics_workload, trial_batch=2,
                )
            ],
            workers=0,
        ).trials
        entry = aggregate(per_seed + batched)["cell"]
        assert entry["ok"] == 4 and entry["failed"] == 0
        assert sorted(entry["seeds"]) == [0, 1, 2, 3]
        assert entry["metrics"]["value"]["n"] == 4
        assert entry["metrics"]["value"]["mean"] == pytest.approx(
            (10 + 11 + 12 + 13) / 4
        )

    def test_metric_present_in_some_trials_only(self):
        trials = [
            TrialResult("e", 0, {}, {"v": 1, "extra": 7.0}, 0.0),
            TrialResult("e", 1, {}, {"v": 2}, 0.0),
            TrialResult("e", 2, {}, {"v": "oops"}, 0.0),  # non-numeric this seed
        ]
        metrics = aggregate(trials)["e"]["metrics"]
        assert metrics["extra"]["n"] == 1
        assert metrics["v"]["n"] == 2  # the string-valued seed is filtered out

    def test_failed_trials_excluded_from_stats(self):
        trials = [
            TrialResult("e", 0, {}, {"v": 1}, 0.0),
            TrialResult("e", 1, {}, {"v": 1000}, 0.0, error="boom"),
        ]
        entry = aggregate(trials)["e"]
        assert entry["metrics"]["v"]["max"] == 1
        assert entry["ok"] == 1 and entry["failed"] == 1


class TestParamsIsolation:
    """Every TrialResult owns a private copy of its params dict."""

    def test_per_seed_trials_do_not_share_params(self):
        sweep = run_sweep(
            [ExperimentSpec("e", metrics_workload, {"base": 10}, seeds=(0, 1))],
            workers=0,
        )
        a, b = sweep.trials
        assert a.params == b.params
        assert a.params is not b.params
        a.params["base"] = 999  # a mutating consumer cannot corrupt siblings
        assert b.params["base"] == 10

    def test_batch_trials_do_not_share_params(self):
        spec = ExperimentSpec(
            "e", metrics_workload, {"base": 10}, seeds=(0, 1, 2),
            batch_fn=batch_metrics_workload, trial_batch=3,
        )
        sweep = run_sweep([spec], workers=0)
        params_ids = {id(t.params) for t in sweep.trials}
        assert len(params_ids) == 3

    def test_failed_trials_do_not_share_params(self):
        sweep = run_sweep(
            [ExperimentSpec("f", failing_workload, {"x": 1}, seeds=(1,)),
             ExperimentSpec("fb", metrics_workload, {"x": 1}, seeds=(0, 1),
                            batch_fn=batch_failing_workload, trial_batch=2)],
            workers=0,
        )
        ids = {id(t.params) for t in sweep.trials}
        assert len(ids) == len(sweep.trials)


class TestJsonEmission:
    def test_schema_and_roundtrip(self, tmp_path):
        path = tmp_path / "bench.json"
        sweep = run_sweep(
            [ExperimentSpec("e", metrics_workload, {}, seeds=(0, 1))],
            workers=0,
            json_path=str(path),
        )
        data = json.loads(path.read_text())
        assert data["schema"] == 3
        assert data["workers"] == 0
        assert data["drained"] is None
        assert set(data["experiments"]) == {"e"}
        assert len(data["trials"]) == 2
        assert all(t["attempts"] == 1 for t in data["trials"])
        assert data["experiments"]["e"]["metrics"]["value"]["mean"] == pytest.approx(
            10.5
        )
        assert sweep.elapsed >= 0

    def test_write_json_is_atomic(self, tmp_path):
        path = tmp_path / "bench.json"
        sweep = run_sweep(
            [ExperimentSpec("e", metrics_workload, {}, seeds=(0,))],
            workers=0, json_path=str(path),
        )
        assert not (tmp_path / "bench.json.tmp").exists()
        # A failing dump must leave the existing complete file untouched
        # (the torn-BENCH-file scenario check_regression.py used to choke on).
        before = path.read_text()
        sweep.trials[0].metrics["bad"] = {1, 2}  # sets are not JSON-serializable
        with pytest.raises(TypeError):
            sweep.write_json(str(path))
        assert path.read_text() == before
        assert not (tmp_path / "bench.json.tmp").exists()


class TestProcessPool:
    def test_pool_matches_inline(self):
        specs = [
            ExperimentSpec(
                "mis-small",
                luby_mis_workload,
                {"topology": "sparse", "n": 120, "degree": 4},
                seeds=(0, 1, 2),
            )
        ]
        inline = run_sweep(specs, workers=0)
        pooled = run_sweep(specs, workers=2)
        assert all(t.ok for t in pooled.trials), [t.error for t in pooled.trials]
        assert [t.metrics["rounds"] for t in inline.trials] == [
            t.metrics["rounds"] for t in pooled.trials
        ]
        assert [t.metrics["mis_size"] for t in inline.trials] == [
            t.metrics["mis_size"] for t in pooled.trials
        ]

    def test_progress_callback_sees_every_trial(self):
        seen = []
        run_sweep(
            [
                ExperimentSpec(
                    "mis-small",
                    luby_mis_workload,
                    {"topology": "torus", "n": 100, "degree": 4},
                    seeds=(0, 1),
                )
            ],
            workers=2,
            progress=seen.append,
        )
        assert sorted(t.seed for t in seen) == [0, 1]


class TestWorkloads:
    def test_build_topology_variants(self):
        for topology in ("sparse", "regular", "torus", "grid", "powerlaw"):
            adj = build_topology(topology, 80, 4, seed=1)
            assert len(adj) >= 60
            # symmetry
            for u, nbrs in enumerate(adj):
                for v in nbrs:
                    assert u in adj[v]

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_topology("hypercube", 10, 2, seed=0)

    def test_luby_workload_metrics(self):
        metrics = luby_mis_workload(seed=0, topology="torus", n=100, degree=4)
        assert metrics["rounds"] >= 2 and metrics["mis_size"] > 0
        assert metrics["n"] == 100

    def test_sinkless_workload_metrics(self):
        metrics = sinkless_workload(seed=0, topology="regular", n=60, degree=4)
        assert metrics["rounds"] >= 2

    def test_splitting_workload_local_method(self):
        metrics = splitting_workload(
            seed=0, topology="sparse", n=200, degree=40, method="local"
        )
        assert metrics["violations"] == 0
        assert metrics["constrained"] > 0

    def test_engine_throughput_workload(self):
        metrics = engine_throughput_workload(seed=0, n=400, degree=6)
        assert metrics["speedup"] > 0
        assert metrics["dense_speedup"] > 0
        assert metrics["reference_seconds"] > 0
        assert metrics["engine_seconds"] > 0
        assert metrics["dense_seconds"] > 0
        assert metrics["rounds"] >= 2

    def test_backend_axis_same_scenario(self):
        # All backends see the same fixed scenario graph; engine and
        # reference are bit-identical, dense (philox) is valid on it.
        kwargs = dict(topology="sparse", n=150, degree=5, graph_seed=77)
        ref = luby_mis_workload(seed=3, backend="reference", **kwargs)
        eng = luby_mis_workload(seed=3, backend="engine", **kwargs)
        dense = luby_mis_workload(seed=3, backend="dense", **kwargs)
        assert ref["n"] == eng["n"] == dense["n"]
        assert ref["m"] == eng["m"] == dense["m"]
        assert (ref["rounds"], ref["mis_size"]) == (eng["rounds"], eng["mis_size"])
        assert dense["mis_size"] > 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            luby_mis_workload(seed=0, topology="torus", n=64, degree=4, backend="gpu")

    def test_sinkless_workload_dense_backend(self):
        metrics = sinkless_workload(seed=0, topology="regular", n=60, degree=4, backend="dense")
        assert metrics["rounds"] >= 2

    def test_splitting_workload_dense_method(self):
        metrics = splitting_workload(
            seed=0, topology="sparse", n=200, degree=40, method="dense"
        )
        assert metrics["violations"] == 0

    def test_scenario_engine_amortized(self):
        engine1, setup1 = scenario_engine("torus", 90, 4, graph_seed=123456)
        engine2, setup2 = scenario_engine("torus", 90, 4, graph_seed=123456)
        assert engine2 is engine1
        assert setup1 > 0.0 and setup2 == 0.0


def batch_metrics_workload(seeds, base=10):
    return [{"value": base + s, "setup_seconds": 0.5 if i == 0 else 0.0}
            for i, s in enumerate(seeds)]


def batch_failing_workload(seeds):
    raise RuntimeError("batch boom")


class TestTrialBatching:
    """batch_fn cells chunk seeds into single tasks, one kernel call each."""

    def test_trials_chunk_seeds(self):
        spec = ExperimentSpec(
            "cell", metrics_workload, seeds=range(7),
            batch_fn=batch_metrics_workload, trial_batch=3,
        )
        tasks = spec.trials()
        assert [t[3] for t in tasks] == [(0, 1, 2), (3, 4, 5), (6,)]
        assert all(t[1] is batch_metrics_workload for t in tasks)

    def test_batch_results_fan_back_to_per_seed_trials(self):
        spec = ExperimentSpec(
            "cell", metrics_workload, {"base": 100}, seeds=range(5),
            batch_fn=batch_metrics_workload, trial_batch=2,
        )
        sweep = run_sweep([spec], workers=0)
        assert [t.seed for t in sweep.trials] == [0, 1, 2, 3, 4]
        assert [t.metrics["value"] for t in sweep.trials] == [100, 101, 102, 103, 104]
        assert all(t.ok for t in sweep.trials)
        # chunk wall-clock is split evenly across the chunk's seeds
        assert sweep.trials[0].elapsed == sweep.trials[1].elapsed
        # the reserved setup channel stays per-trial: first seed of each
        # chunk paid it, the rest report 0
        assert [t.setup_seconds for t in sweep.trials] == [0.5, 0.0, 0.5, 0.0, 0.5]

    def test_batch_failure_fails_every_seed_in_chunk(self):
        spec = ExperimentSpec(
            "cell", metrics_workload, seeds=range(4),
            batch_fn=batch_failing_workload, trial_batch=4,
        )
        sweep = run_sweep([spec], workers=0)
        assert len(sweep.trials) == 4
        assert all(not t.ok for t in sweep.trials)
        assert all("batch boom" in t.error for t in sweep.trials)

    def test_batch_tasks_cross_process_pool(self):
        spec = ExperimentSpec(
            "cell", metrics_workload, seeds=range(6),
            batch_fn=batch_metrics_workload, trial_batch=2,
        )
        inline = run_sweep([spec], workers=0)
        pooled = run_sweep([spec], workers=2)
        assert [(t.seed, t.metrics) for t in pooled.trials] == [
            (t.seed, t.metrics) for t in inline.trials
        ]

    def test_progress_sees_every_seed(self):
        seen = []
        spec = ExperimentSpec(
            "cell", metrics_workload, seeds=range(5),
            batch_fn=batch_metrics_workload, trial_batch=2,
        )
        run_sweep([spec], workers=0, progress=lambda t: seen.append(t.seed))
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_wrong_length_batch_result_is_error(self):
        spec = ExperimentSpec(
            "cell", metrics_workload, seeds=range(3),
            batch_fn=lambda seeds: [{}], trial_batch=3,
        )
        sweep = run_sweep([spec], workers=0)
        assert all(not t.ok for t in sweep.trials)

    def test_luby_batch_workload_matches_per_seed_backend(self):
        from repro.exp.workloads import luby_mis_batch_workload

        kwargs = dict(topology="sparse", n=150, degree=5, graph_seed=77)
        rows = luby_mis_batch_workload(seeds=(0, 1, 2), **kwargs)
        assert len(rows) == 3
        for seed, row in zip((0, 1, 2), rows):
            assert row["mis_size"] > 0
            assert row["trial_batch"] == 3
        assert rows[0]["setup_seconds"] >= 0.0
        assert rows[1]["setup_seconds"] == 0.0
