"""The sqlite bench-history analytics layer (`benchmarks/history.py`)."""

import importlib.util
import json
from pathlib import Path


def load_history_mod():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "history.py"
    spec = importlib.util.spec_from_file_location("bench_history_index", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def row(commit, solve, *, seed=0, schema=4, experiment="mis/sparse@dense",
        written_at=1.0, ok=True, **extra):
    base = {
        "schema": schema,
        "commit": commit,
        "experiment": experiment,
        "backend": experiment.rsplit("@", 1)[1] if "@" in experiment else "",
        "seed": seed,
        "ok": ok,
        "error": None,
        "elapsed": solve,
        "written_at": written_at,
        "params": {},
        "metrics": {"solve_seconds": solve},
    }
    if schema >= 2:
        base["setup_seconds"] = 0.02
    if schema >= 3:
        base["attempts"] = 1
    if schema >= 4:
        base["pack_seconds"] = 0.015
        base["rng_seconds"] = 0.005
    base.update(extra)
    return base


def write_jsonl(path, rows):
    with path.open("w") as fh:
        for r in rows:
            fh.write(json.dumps(r) + "\n")


def creeping_history(tmp_path, commits=6, rate=1.08, seeds=3):
    """A cell whose solve median grows ``rate``x per commit."""
    rows = []
    for i in range(commits):
        for seed in range(seeds):
            rows.append(row(f"c{i}", 0.1 * rate ** i, seed=seed,
                            written_at=float(i * 100 + seed)))
    path = tmp_path / "hist.jsonl"
    write_jsonl(path, rows)
    return path


def test_index_normalizes_all_schema_versions(tmp_path):
    hist = load_history_mod()
    path = tmp_path / "hist.jsonl"
    write_jsonl(path, [
        row("c1", 0.1, schema=1),
        row("c1", 0.1, seed=1, schema=2),
        row("c1", 0.1, seed=2, schema=3),
        row("c1", 0.1, seed=3, schema=4),
    ])
    conn = hist.build_index(path)
    got = {
        seed: (setup, pack, rng, attempts)
        for seed, setup, pack, rng, attempts in conn.execute(
            "SELECT seed, setup_seconds, pack_seconds, rng_seconds, attempts "
            "FROM trials ORDER BY seed"
        )
    }
    assert got[0] == (0.0, 0.0, 0.0, 1)        # v1: no setup at all
    assert got[1] == (0.02, 0.02, 0.0, 1)      # v2: pack defaults to setup
    assert got[2] == (0.02, 0.02, 0.0, 1)      # v3: ditto, attempts real
    assert got[3] == (0.02, 0.015, 0.005, 1)   # v4: explicit split
    assert hist.cells(conn) == [("mis/sparse@dense", "dense")]


def test_index_skips_rows_without_experiment(tmp_path):
    hist = load_history_mod()
    path = tmp_path / "hist.jsonl"
    write_jsonl(path, [row("c1", 0.1), {"garbage": True}])
    conn = hist.build_index(path)
    assert conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0] == 1


def test_on_disk_index_round_trips(tmp_path):
    hist = load_history_mod()
    path = creeping_history(tmp_path)
    db = tmp_path / "hist.sqlite"
    hist.build_index(path, db).close()
    conn = hist.open_index(db)
    assert conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0] == 18


def test_latest_commit_and_baseline_selection(tmp_path):
    hist = load_history_mod()
    conn = hist.build_index(creeping_history(tmp_path))
    assert hist.latest_commit(conn) == "c5"
    assert hist.latest_baseline_commit(
        conn, "mis/sparse@dense", "dense", exclude_commit="c5"
    ) == "c4"
    assert hist.latest_baseline_commit(conn, "absent", "dense") is None


def test_cell_samples_only_include_ok_rows(tmp_path):
    hist = load_history_mod()
    path = tmp_path / "hist.jsonl"
    write_jsonl(path, [
        row("c1", 0.1),
        row("c1", 9.9, seed=1, ok=False, error="Timeout"),
    ])
    conn = hist.build_index(path)
    samples = hist.cell_samples(conn, "mis/sparse@dense", "dense", "c1")
    assert samples["solve_seconds"] == [0.1]


def test_trajectory_orders_commits_by_written_at(tmp_path):
    hist = load_history_mod()
    conn = hist.build_index(creeping_history(tmp_path))
    points = hist.trajectory(conn, "mis/sparse@dense", "dense", last=3)
    assert [p[0] for p in points] == ["c3", "c4", "c5"]
    medians = [p[2] for p in points]
    assert medians == sorted(medians)  # creeping upward


def test_slope_fits_a_line():
    hist = load_history_mod()
    assert hist.slope([1.0, 2.0, 3.0]) == 3.0 - 2.0
    assert hist.slope([5.0, 5.0, 5.0]) == 0.0
    assert hist.slope([1.0]) == 0.0


def test_slope_alerts_flag_creep_but_not_flat_cells(tmp_path):
    hist = load_history_mod()
    rows = []
    for i in range(6):
        rows.append(row(f"c{i}", 0.1 * 1.08 ** i, written_at=float(i)))
        rows.append(row(f"c{i}", 0.2, experiment="mis/sparse@engine",
                        written_at=float(i)))
    path = tmp_path / "hist.jsonl"
    write_jsonl(path, rows)
    conn = hist.build_index(path)
    alerts = hist.slope_alerts(conn, hist.cells(conn), k=5, threshold=0.05)
    assert [(a["experiment"], a["backend"]) for a in alerts] == [
        ("mis/sparse@dense", "dense")
    ]
    assert alerts[0]["relative_slope"] > 0.05
    # sub-noise-floor cells never alert, however steep
    assert hist.slope_alerts(conn, hist.cells(conn), k=5, threshold=0.05,
                             min_seconds=10.0) == []


def test_slope_alerts_need_three_commits(tmp_path):
    hist = load_history_mod()
    path = tmp_path / "hist.jsonl"
    write_jsonl(path, [row("c1", 0.1, written_at=1.0),
                       row("c2", 0.5, written_at=2.0)])
    conn = hist.build_index(path)
    assert hist.slope_alerts(conn, hist.cells(conn)) == []


def test_find_regressions_matches_threshold_and_noise_floor(tmp_path):
    hist = load_history_mod()
    conn = hist.build_index(creeping_history(tmp_path))
    cell = ("mis/sparse@dense", "dense")
    current = {cell: {"solve_seconds": [0.5], "setup_seconds": [0.02]}}
    regressions, lines = hist.find_regressions(conn, "HEAD", current)
    assert len(regressions) == 1
    experiment, backend, metric, ref, cur, delta = regressions[0]
    assert (experiment, backend, metric) == (*cell, "solve_seconds")
    assert cur == 0.5 and delta > 0.30
    assert any("<< REGRESSION" in line for line in lines)
    # same current numbers pass a looser threshold
    ok, _ = hist.find_regressions(conn, "HEAD", current, threshold=5.0)
    assert ok == []


def test_annotate_escapes_newlines(capsys):
    hist = load_history_mod()
    hist.annotate("warning", "perf trajectory", "line1\nline2")
    out = capsys.readouterr().out
    assert out == "::warning title=perf trajectory::line1%0Aline2\n"


def test_regressions_cli_exit_codes(tmp_path, capsys):
    hist = load_history_mod()
    path = creeping_history(tmp_path)
    # the creep is ~8%/commit — below the 30% step gate, so exit 0 with a
    # trajectory warning; with a tight threshold the last step fails.
    assert hist.main(["--history", str(path), "regressions"]) == 0
    out = capsys.readouterr().out
    assert "no perf regressions vs the latest baseline commit" in out
    assert "TRAJECTORY WARNING" in out
    assert hist.main(
        ["--history", str(path), "regressions", "--threshold", "0.05"]
    ) == 1


def test_trend_and_compare_cli(tmp_path, capsys):
    hist = load_history_mod()
    path = creeping_history(tmp_path)
    assert hist.main(
        ["--history", str(path), "trend", "--experiment", "mis", "--backend", "dense"]
    ) == 0
    assert "per commit" in capsys.readouterr().out
    assert hist.main(["--history", str(path), "compare", "c0", "c5"]) == 0
    assert "+47%" in capsys.readouterr().out
    assert hist.main(
        ["--history", str(path), "trend", "--experiment", "nope"]
    ) == 1


def test_index_cli_notes_missing_store(tmp_path, capsys):
    hist = load_history_mod()
    missing = tmp_path / "never_bootstrapped.jsonl"
    db = tmp_path / "hist.sqlite"
    assert hist.main(
        ["--history", str(missing), "--db", str(db), "index"]
    ) == 0
    captured = capsys.readouterr()
    assert "no results store" in captured.err
    assert "run_experiments.py" in captured.err
    assert "indexed 0 trials" in captured.out


def test_query_cli_notes_missing_store(tmp_path, capsys):
    hist = load_history_mod()
    missing = tmp_path / "never_bootstrapped.jsonl"
    assert hist.main(["--history", str(missing), "regressions"]) == 0
    captured = capsys.readouterr()
    assert "no results store" in captured.err
    assert "nothing to check" in captured.out


def test_no_note_once_store_exists(tmp_path, capsys):
    hist = load_history_mod()
    path = tmp_path / "hist.jsonl"
    write_jsonl(path, [row("c0", 0.1)])
    db = tmp_path / "hist.sqlite"
    assert hist.main(["--history", str(path), "--db", str(db), "index"]) == 0
    captured = capsys.readouterr()
    assert "no results store" not in captured.err
    assert "indexed 1 trials" in captured.out
