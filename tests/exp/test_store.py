"""The append-only results store (`benchmarks/store.py`)."""

import importlib.util
import json
from pathlib import Path

from repro.exp import ExperimentSpec, run_sweep
from repro.exp.workloads import luby_mis_workload


def load_store():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "store.py"
    spec = importlib.util.spec_from_file_location("bench_store", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def tiny_sweep():
    spec = ExperimentSpec(
        "mis/sparse@engine",
        luby_mis_workload,
        {"topology": "sparse", "n": 80, "degree": 4, "backend": "engine"},
        seeds=(0, 1),
    )
    return run_sweep([spec], workers=0)


class TestHistoryStore:
    def test_rows_are_keyed_by_commit_experiment_backend_seed(self):
        store = load_store()
        sweep = tiny_sweep()
        rows = store.history_rows(sweep, commit="abc123")
        assert len(rows) == 2
        for row, trial in zip(rows, sweep.trials):
            assert row["commit"] == "abc123"
            assert row["experiment"] == "mis/sparse@engine"
            assert row["backend"] == "engine"  # parsed off the @suffix
            assert row["seed"] == trial.seed
            assert row["ok"] and row["error"] is None
            assert row["metrics"]["n"] == 80
            assert row["schema"] == store.HISTORY_SCHEMA

    def test_append_is_cumulative_and_loadable(self, tmp_path):
        store = load_store()
        sweep = tiny_sweep()
        path = tmp_path / "bench_history.jsonl"
        assert store.append_history(sweep, path, commit="one") == 2
        assert store.append_history(sweep, path, commit="two") == 2
        rows = store.load_history(path)
        assert [r["commit"] for r in rows] == ["one", "one", "two", "two"]
        # every line is standalone json (concurrent appenders stay safe)
        with path.open() as fh:
            for line in fh:
                json.loads(line)

    def test_missing_file_loads_empty(self, tmp_path):
        store = load_store()
        assert store.load_history(tmp_path / "nope.jsonl") == []

    def test_commit_discovery_never_raises(self, tmp_path):
        store = load_store()
        assert store.current_commit(str(tmp_path)) == "unknown"  # not a repo
        assert isinstance(store.current_commit(), str)

    def test_backend_falls_back_to_params(self):
        store = load_store()
        sweep = tiny_sweep()
        trial = sweep.trials[0]
        trial.experiment = "splitting/local"
        trial.params = {"method": "local"}
        assert store.history_rows(sweep, commit="c")[0]["backend"] == "local"
