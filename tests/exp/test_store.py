"""The append-only results store (`benchmarks/store.py`)."""

import importlib.util
import json
from pathlib import Path

from repro.exp import ExperimentSpec, run_sweep
from repro.exp.workloads import luby_mis_workload


def load_store():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "store.py"
    spec = importlib.util.spec_from_file_location("bench_store", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def tiny_sweep():
    spec = ExperimentSpec(
        "mis/sparse@engine",
        luby_mis_workload,
        {"topology": "sparse", "n": 80, "degree": 4, "backend": "engine"},
        seeds=(0, 1),
    )
    return run_sweep([spec], workers=0)


class TestHistoryStore:
    def test_rows_are_keyed_by_commit_experiment_backend_seed(self):
        store = load_store()
        sweep = tiny_sweep()
        rows = store.history_rows(sweep, commit="abc123")
        assert len(rows) == 2
        for row, trial in zip(rows, sweep.trials):
            assert row["commit"] == "abc123"
            assert row["experiment"] == "mis/sparse@engine"
            assert row["backend"] == "engine"  # parsed off the @suffix
            assert row["seed"] == trial.seed
            assert row["ok"] and row["error"] is None
            assert row["metrics"]["n"] == 80
            assert row["schema"] == store.HISTORY_SCHEMA

    def test_append_is_cumulative_and_loadable(self, tmp_path):
        store = load_store()
        sweep = tiny_sweep()
        path = tmp_path / "bench_history.jsonl"
        assert store.append_history(sweep, path, commit="one") == 2
        assert store.append_history(sweep, path, commit="two") == 2
        rows = store.load_history(path)
        assert [r["commit"] for r in rows] == ["one", "one", "two", "two"]
        # every line is standalone json (concurrent appenders stay safe)
        with path.open() as fh:
            for line in fh:
                json.loads(line)

    def test_missing_file_loads_empty(self, tmp_path):
        store = load_store()
        assert store.load_history(tmp_path / "nope.jsonl") == []

    def test_rows_record_retry_attempts(self, tmp_path):
        # Retried trials carry their attempt count into the history rows,
        # so cross-PR queries can separate flaky cells from healthy ones.
        from repro.exp import RetryPolicy
        from repro.exp.workloads import chaos_flaky

        store = load_store()
        spec = ExperimentSpec(
            "chaos/flaky@none", chaos_flaky,
            {"succeed_after": 2, "state_dir": str(tmp_path), "label": "st"},
            seeds=(0,), retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        rows = store.history_rows(run_sweep([spec], workers=0), commit="abc")
        assert rows[0]["attempts"] == 2 and rows[0]["ok"]
        assert rows[0]["schema"] == store.HISTORY_SCHEMA

    def test_commit_discovery_never_raises(self, tmp_path):
        store = load_store()
        assert store.current_commit(str(tmp_path)) == "unknown"  # not a repo
        assert isinstance(store.current_commit(), str)

    def test_backend_falls_back_to_params(self):
        store = load_store()
        sweep = tiny_sweep()
        trial = sweep.trials[0]
        trial.experiment = "splitting/local"
        trial.params = {"method": "local"}
        assert store.history_rows(sweep, commit="c")[0]["backend"] == "local"

    def test_rows_carry_setup_seconds(self):
        store = load_store()
        rows = store.history_rows(tiny_sweep(), commit="c")
        assert all("setup_seconds" in r for r in rows)
        assert all(isinstance(r["setup_seconds"], float) for r in rows)


class TestCorruptTrailingLine:
    """A crash-interrupted append must not sink the store."""

    def test_load_skips_undecodable_lines(self, tmp_path, capsys):
        store = load_store()
        path = tmp_path / "bench_history.jsonl"
        store.append_history(tiny_sweep(), path, commit="one")
        with path.open("a") as fh:
            fh.write('{"torn": tru')  # truncated mid-write, no newline
        rows = store.load_history(path)
        assert [r["commit"] for r in rows] == ["one", "one"]
        assert "skipping corrupt line" in capsys.readouterr().err

    def test_append_seals_torn_tail(self, tmp_path):
        store = load_store()
        path = tmp_path / "bench_history.jsonl"
        store.append_history(tiny_sweep(), path, commit="one")
        with path.open("a") as fh:
            fh.write('{"torn": tru')
        # The next append must not fuse its first row onto the torn tail.
        store.append_history(tiny_sweep(), path, commit="two")
        rows = store.load_history(path)
        assert [r["commit"] for r in rows] == ["one", "one", "two", "two"]


class TestLatestBaseline:
    def _row(self, commit, experiment="mis/sparse@engine", backend="engine",
             ok=True, written_at=0.0, solve=1.0):
        return {
            "commit": commit, "experiment": experiment, "backend": backend,
            "ok": ok, "written_at": written_at,
            "metrics": {"solve_seconds": solve},
        }

    def test_picks_newest_commit_group(self):
        store = load_store()
        rows = [
            self._row("old", written_at=1.0, solve=0.5),
            self._row("old", written_at=1.0, solve=0.6),
            self._row("new", written_at=2.0, solve=0.1),
        ]
        base = store.latest_baseline(rows, "mis/sparse@engine", "engine")
        assert [r["commit"] for r in base] == ["new"]

    def test_excludes_current_commit_and_failures(self):
        store = load_store()
        rows = [
            self._row("old", written_at=1.0),
            self._row("cur", written_at=2.0),
            self._row("bad", written_at=3.0, ok=False),
        ]
        base = store.latest_baseline(
            rows, "mis/sparse@engine", "engine", exclude_commit="cur"
        )
        assert [r["commit"] for r in base] == ["old"]

    def test_empty_when_cell_unseen(self):
        store = load_store()
        rows = [self._row("old")]
        assert store.latest_baseline(rows, "mis/sparse@engine", "dense") == []
        assert store.latest_baseline([], "mis/sparse@engine", "engine") == []


class TestBootstrap:
    def test_creates_missing_store_with_parents(self, tmp_path):
        store = load_store()
        path = tmp_path / "nested" / "bench_history.jsonl"
        assert store.bootstrap_history(path) is True
        assert path.exists() and path.stat().st_size == 0
        assert store.load_history(path) == []

    def test_leaves_existing_store_untouched(self, tmp_path):
        store = load_store()
        path = tmp_path / "bench_history.jsonl"
        path.write_text('{"experiment": "x"}\n')
        assert store.bootstrap_history(path) is False
        assert path.read_text() == '{"experiment": "x"}\n'

    def test_bootstrapped_store_accepts_appends(self, tmp_path):
        store = load_store()
        path = tmp_path / "bench_history.jsonl"
        store.bootstrap_history(path)
        sweep = tiny_sweep()
        assert store.append_history(sweep, path, commit="abc") == 2
        assert len(store.load_history(path)) == 2
