"""Tracer record collection and the torn-write-safe trace JSONL."""

import json

import pytest

from repro.obs import NullTracer, Tracer, append_trace, load_trace


def test_tracer_stamps_common_tags_on_every_record():
    tracer = Tracer(trial=7, backend="engine", scenario="luby/crash")
    tracer.round(1, active=100)
    tracer.event("result", rounds=1)
    assert all(
        r["trial"] == 7 and r["backend"] == "engine" and r["scenario"] == "luby/crash"
        for r in tracer.records
    )


def test_tracer_omits_unset_common_tags():
    tracer = Tracer(backend="dense")
    tracer.round(1, active=5)
    (record,) = tracer.records
    assert record["backend"] == "dense"
    assert "trial" not in record and "scenario" not in record


def test_round_records_filters_and_preserves_order():
    tracer = Tracer()
    tracer.event("setup", n=10)
    tracer.round(1, active=10)
    tracer.event("note")
    tracer.round(2, active=4)
    rounds = tracer.round_records()
    assert [r["round"] for r in rounds] == [1, 2]
    assert all(r["kind"] == "round" for r in rounds)
    assert len(tracer.records) == 4


def test_span_records_wall_time():
    tracer = Tracer()
    with tracer.span("pack", n=100):
        pass
    (record,) = tracer.records
    assert record["kind"] == "span"
    assert record["name"] == "pack"
    assert record["n"] == 100
    assert record["seconds"] >= 0.0


def test_span_records_even_when_body_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert tracer.records[0]["name"] == "doomed"


def test_flush_appends_and_clears(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(trial=0)
    tracer.round(1, active=3)
    tracer.round(2, active=1)
    assert tracer.flush(path) == 2
    assert tracer.records == []
    # a second flush writes nothing new
    assert tracer.flush(path) == 0
    records = load_trace(path)
    assert [r["round"] for r in records] == [1, 2]


def test_append_trace_accumulates_across_writers(tmp_path):
    path = tmp_path / "trace.jsonl"
    append_trace(path, [{"kind": "round", "round": 1, "trial": 0}])
    append_trace(path, [{"kind": "round", "round": 1, "trial": 1}])
    assert [r["trial"] for r in load_trace(path)] == [0, 1]


def test_append_seals_a_torn_tail(tmp_path):
    """A crash-truncated trailing line must not fuse with the next append."""
    path = tmp_path / "trace.jsonl"
    append_trace(path, [{"kind": "round", "round": 1}])
    with path.open("a") as fh:
        fh.write('{"kind": "round", "rou')  # torn mid-record, no newline
    append_trace(path, [{"kind": "round", "round": 2}])
    records = load_trace(path)
    assert [r["round"] for r in records] == [1, 2]


def test_load_trace_skips_corrupt_lines_with_warning(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    lines = [
        json.dumps({"kind": "round", "round": 1}),
        "not json at all {",
        json.dumps({"kind": "round", "round": 2}),
    ]
    path.write_text("\n".join(lines) + "\n")
    records = load_trace(path)
    assert [r["round"] for r in records] == [1, 2]
    assert f"skipping corrupt line 2 of {path}" in capsys.readouterr().err


def test_load_trace_missing_file_is_empty(tmp_path):
    assert load_trace(tmp_path / "absent.jsonl") == []


def test_null_tracer_is_inert(tmp_path):
    null = NullTracer()
    assert null.enabled is False
    null.round(1, active=10)
    null.event("result", rounds=1)
    with null.span("phase"):
        pass
    assert null.round_records() == []
    assert null.records == []
    path = tmp_path / "trace.jsonl"
    assert null.flush(path) == 0
    assert not path.exists()
