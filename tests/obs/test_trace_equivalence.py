"""Cross-backend trace equivalence.

The backends are bit-identical under replayed coins (the scenario layer's
core invariant), so their *traces* must agree too: same number of round
records as executed rounds, same per-round active-set trajectory, same
violation count.  This pins the dense kernels' explicit trace points to
the hook-based executors' ``TracingHooks`` accounting — a dense trace
point placed on the wrong side of a phase boundary shows up here as a
diverging active count even though the run outputs still match.
"""

import pytest

from repro.obs import Tracer
from repro.scenarios import get_scenario
from repro.scenarios.run import run_scenario

# One scenario per pipeline; together they cover all three backends and
# all three trace-point styles (hooked loop, hooked engine, dense kernel).
CASES = ["luby/crash", "sinkless/crash", "splitting/drop-iid"]


def _traced_run(name, backend, seed=3):
    tracer = Tracer(backend=backend, scenario=name)
    metrics = run_scenario(
        name, n=200, seed=seed, backend=backend, coins="replay", tracer=tracer
    )
    return tracer, metrics


@pytest.mark.parametrize("name", CASES)
def test_round_record_count_matches_rounds_on_every_backend(name):
    for backend in get_scenario(name).backends:
        tracer, metrics = _traced_run(name, backend)
        records = tracer.round_records()
        assert len(records) == metrics["rounds"], (
            f"{name}@{backend}: {len(records)} round records for "
            f"{metrics['rounds']} rounds"
        )


@pytest.mark.parametrize("name", CASES)
def test_traced_trajectories_agree_across_backends(name):
    summaries = {}
    for backend in get_scenario(name).backends:
        tracer, metrics = _traced_run(name, backend)
        summaries[backend] = {
            "rounds": metrics["rounds"],
            "active": [r["active"] for r in tracer.round_records()],
            "violations": metrics.get("violations"),
        }
    backends = list(summaries)
    assert len(backends) >= 2, f"{name} has a single backend; nothing to compare"
    first = summaries[backends[0]]
    for other in backends[1:]:
        assert summaries[other] == first, (
            f"{name}: trace mismatch between {backends[0]} and {other}"
        )


def test_scenario_runner_emits_a_result_event():
    tracer, metrics = _traced_run("luby/crash", "dense")
    results = [r for r in tracer.records if r["kind"] == "result"]
    assert len(results) == 1
    assert results[0]["rounds"] == metrics["rounds"]
    assert results[0]["scenario"] == "luby/crash"


def test_untraced_and_traced_runs_return_identical_metrics():
    plain = run_scenario("luby/crash", n=200, seed=3, backend="dense", coins="replay")
    tracer, traced = _traced_run("luby/crash", "dense")
    # tracing must be a pure observer: pop wall-time metrics, compare the rest
    for metrics in (plain, traced):
        for key in list(metrics):
            if key.endswith("_seconds") or key == "elapsed":
                metrics.pop(key)
    assert plain == traced
