"""The zero-dependency counters/gauges/histograms registry."""

import json

import pytest

from repro.obs import MetricsRegistry


def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("executor.timeouts")
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_instruments_are_created_on_first_use_and_shared():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_gauge_is_last_write_wins():
    registry = MetricsRegistry()
    gauge = registry.gauge("workers")
    gauge.set(8)
    gauge.set(2)
    assert gauge.value == 2.0


def test_histogram_streams_summary_stats():
    registry = MetricsRegistry()
    hist = registry.histogram("cell.mis.solve_seconds")
    for value in (0.5, 1.5, 1.0):
        hist.observe(value)
    stats = hist.to_dict()
    assert stats == {"count": 3, "sum": 3.0, "min": 0.5, "max": 1.5, "mean": 1.0}


def test_empty_histogram_snapshot_is_zeros():
    assert MetricsRegistry().histogram("h").to_dict() == {
        "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
    }


def test_snapshot_is_sorted_and_json_ready():
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a").inc(2)
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(0.25)
    snap = registry.snapshot()
    assert list(snap) == ["counters", "gauges", "histograms"]
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["counters"] == {"a": 2, "b": 1}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["histograms"]["h"]["count"] == 1
    json.dumps(snap, sort_keys=True)  # must be JSON-serializable as-is
