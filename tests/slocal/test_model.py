"""Tests for the SLOCAL simulator."""

import pytest

from repro.slocal import BallView, SLocalAlgorithm, SLocalSimulator
from tests.conftest import cycle_graph, path_graph


class GreedyColor(SLocalAlgorithm):
    """Classic SLOCAL(1) greedy coloring: pick the smallest free color."""

    radius = 1

    def process(self, view: BallView):
        used = {
            view.memory[x].get("color")
            for x in view.adjacency_in_ball[view.center]
        }
        c = 0
        while c in used:
            c += 1
        view.memory[view.center]["color"] = c
        return c


class BallInspector(SLocalAlgorithm):
    radius = 2

    def process(self, view: BallView):
        return sorted(view.nodes)


class IllegalWriter(SLocalAlgorithm):
    """Tries to write a *neighbor's* memory; the simulator must discard it."""

    radius = 1

    def process(self, view: BallView):
        for x in view.nodes:
            if x != view.center:
                view.memory[x]["tainted"] = True
        return None


class TestSimulator:
    def test_greedy_coloring_is_proper(self):
        adj = cycle_graph(7)
        sim = SLocalSimulator(adj)
        outputs, _ = sim.run(GreedyColor())
        for v in range(7):
            for w in adj[v]:
                assert outputs[v] != outputs[w]

    def test_greedy_coloring_uses_at_most_delta_plus_one(self):
        adj = cycle_graph(8)
        sim = SLocalSimulator(adj)
        outputs, _ = sim.run(GreedyColor())
        assert max(outputs) <= 2

    def test_order_affects_output(self):
        adj = path_graph(3)
        sim = SLocalSimulator(adj)
        a, _ = sim.run(GreedyColor(), order=[0, 1, 2])
        b, _ = sim.run(GreedyColor(), order=[1, 0, 2])
        assert a != b

    def test_order_must_be_permutation(self):
        sim = SLocalSimulator(path_graph(3))
        with pytest.raises(ValueError):
            sim.run(GreedyColor(), order=[0, 0, 1])

    def test_ball_radius_two(self):
        sim = SLocalSimulator(path_graph(5))
        outputs, _ = sim.run(BallInspector())
        assert outputs[0] == [0, 1, 2]
        assert outputs[2] == [0, 1, 2, 3, 4]

    def test_ball_radius_respected(self):
        sim = SLocalSimulator(path_graph(9))
        nodes, dist = sim.ball(4, 2)
        assert sorted(nodes) == [2, 3, 4, 5, 6]
        assert dist[2] == 2 and dist[4] == 0

    def test_illegal_writes_discarded(self):
        sim = SLocalSimulator(path_graph(3))
        _, memories = sim.run(IllegalWriter())
        assert not any(m.get("tainted") for m in memories)

    def test_memories_seed_inputs(self):
        class ReadInput(SLocalAlgorithm):
            radius = 1

            def process(self, view):
                return view.memory[view.center].get("x")

        sim = SLocalSimulator(path_graph(2))
        outputs, _ = sim.run(ReadInput(), memories=[{"x": 10}, {"x": 20}])
        assert outputs == [10, 20]

    def test_output_recorded_in_memory(self):
        sim = SLocalSimulator(path_graph(2))
        _, memories = sim.run(GreedyColor())
        assert all("output" in m for m in memories)

    def test_uids_visible_in_view(self):
        class UidReader(SLocalAlgorithm):
            radius = 1

            def process(self, view):
                return view.uid[view.center]

        sim = SLocalSimulator(path_graph(3), ids=[7, 8, 9])
        outputs, _ = sim.run(UidReader())
        assert outputs == [7, 8, 9]
