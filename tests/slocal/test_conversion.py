"""Tests for the SLOCAL -> LOCAL conversion via power-graph colorings."""

import pytest

from repro.coloring import distance_coloring
from repro.local import RoundLedger
from repro.slocal import (
    SLocalAlgorithm,
    run_slocal_via_coloring,
    verify_power_coloring,
)
from tests.conftest import cycle_graph, path_graph


class GreedyColor(SLocalAlgorithm):
    radius = 1

    def process(self, view):
        used = {
            view.memory[x].get("color")
            for x in view.adjacency_in_ball[view.center]
        }
        c = 0
        while c in used:
            c += 1
        view.memory[view.center]["color"] = c
        return c


class TestVerifyPowerColoring:
    def test_proper_distance_one(self):
        adj = path_graph(4)
        assert verify_power_coloring(adj, [0, 1, 0, 1], radius=1)

    def test_improper_distance_one(self):
        adj = path_graph(4)
        assert not verify_power_coloring(adj, [0, 0, 1, 0], radius=1)

    def test_distance_two_needs_more_colors(self):
        adj = path_graph(4)
        assert not verify_power_coloring(adj, [0, 1, 0, 1], radius=2)
        assert verify_power_coloring(adj, [0, 1, 2, 0], radius=2)


class TestConversion:
    def test_runs_and_is_proper(self):
        adj = cycle_graph(9)
        colors, _ = distance_coloring(adj, 1)
        outputs, _ = run_slocal_via_coloring(adj, GreedyColor(), colors)
        for v in range(9):
            for w in adj[v]:
                assert outputs[v] != outputs[w]

    def test_rejects_improper_coloring(self):
        adj = path_graph(4)
        with pytest.raises(ValueError):
            run_slocal_via_coloring(adj, GreedyColor(), [0, 0, 0, 0])

    def test_charges_rounds_proportional_to_colors(self):
        adj = cycle_graph(8)
        colors, num = distance_coloring(adj, 1)
        led = RoundLedger()
        run_slocal_via_coloring(adj, GreedyColor(), colors, ledger=led)
        assert led.total == num * 1  # radius-1 algorithm

    def test_equivalent_to_sequential_color_order(self):
        """The conversion's output equals sequential (color, id) processing."""
        from repro.slocal import SLocalSimulator

        adj = cycle_graph(10)
        colors, _ = distance_coloring(adj, 1)
        conv_out, _ = run_slocal_via_coloring(adj, GreedyColor(), colors)
        order = sorted(range(10), key=lambda v: (colors[v], v))
        seq_out, _ = SLocalSimulator(adj).run(GreedyColor(), order=order)
        assert conv_out == seq_out

    def test_coloring_length_checked(self):
        adj = path_graph(3)
        with pytest.raises(ValueError):
            run_slocal_via_coloring(adj, GreedyColor(), [0, 1])
