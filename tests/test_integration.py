"""End-to-end integration tests chaining multiple subsystems.

Each test exercises a pipeline the paper composes from several results —
these are the "does the whole machine turn over" checks on top of the
per-module unit tests.
"""

import pytest

from repro import (
    RoundLedger,
    bipartite_girth,
    double_cover,
    is_weak_splitting,
    orientation_from_weak_splitting,
    random_left_regular,
    random_regular_graph,
    random_simple_graph,
    solve_weak_splitting,
    weak_splitting_instance_from_graph,
)
from repro.apps import coloring_via_splitting, mis_via_splitting
from repro.coloring import is_proper_coloring
from repro.core import (
    boost_multicolor_splitting,
    weak_multicolor_splitting,
    weak_splitting_from_multicolor,
)
from repro.mis import is_mis
from repro.orientation import is_sinkless


class TestGraphSplittingPipelines:
    def test_double_cover_weak_splitting_gives_both_colors_in_g(self):
        """Section 1.1: a weak splitting of the doubled instance is a
        red/blue partition of V_G where every node sees both colors."""
        adj = random_regular_graph(200, 24, seed=1)
        inst = double_cover(adj)
        coloring = solve_weak_splitting(inst, seed=2)
        for v in range(len(adj)):
            seen = {coloring[w] for w in adj[v]}
            assert seen == {0, 1}

    def test_lower_bound_chain(self):
        """Figure 1 end-to-end: G -> B -> weak splitting -> sinkless."""
        adj = random_regular_graph(80, 8, seed=3)
        inst, edge_list = weak_splitting_instance_from_graph(adj)
        coloring = solve_weak_splitting(inst, method="heuristic", seed=4)
        orientation = orientation_from_weak_splitting(edge_list, coloring)
        assert is_sinkless(adj, orientation)

    def test_multicolor_completeness_chain(self):
        """Theorem 3.2 both directions: solve the relaxed problem, reduce
        its solution back into a weak splitting."""
        inst = random_left_regular(60, 160, 130, seed=5)
        multicolor = weak_multicolor_splitting(inst)
        coloring = weak_splitting_from_multicolor(inst, multicolor)
        assert is_weak_splitting(inst, coloring)

    def test_boost_then_weak_splitting(self):
        """Theorem 3.3 chain: boost a (C, λ) oracle and select rainbows."""
        inst = random_left_regular(40, 300, 250, seed=6)
        flat, palette, iters = boost_multicolor_splitting(
            inst, num_colors=6, lam=0.5, alpha=1.0
        )
        assert iters >= 1 and palette >= 2


class TestApplications:
    def test_coloring_and_mis_share_splitter(self):
        adj = random_regular_graph(300, 120, seed=7)
        col = coloring_via_splitting(adj, seed=8)
        assert is_proper_coloring(adj, col.colors)
        mis_res = mis_via_splitting(adj, seed=9, eps=0.2)
        assert is_mis(adj, mis_res.mis)

    def test_ledger_composes_across_phases(self):
        inst = random_left_regular(400, 400, 12, seed=10)
        led = RoundLedger()
        coloring = solve_weak_splitting(inst, seed=11, ledger=led)
        assert is_weak_splitting(inst, coloring)
        assert led.total > 0
        assert led.simulated_total() > 0  # shattering ran in the simulator


class TestSolverMatrix:
    """The solver façade across a grid of instance shapes."""

    @pytest.mark.parametrize("seed", range(3))
    def test_near_regular_grid(self, seed):
        from repro.bipartite import random_near_regular

        inst = random_near_regular(200, 200, 20, 28, seed=seed)
        coloring = solve_weak_splitting(inst, seed=seed)
        assert is_weak_splitting(inst, coloring)

    @pytest.mark.parametrize("d,r_target", [(12, 2), (18, 3), (24, 4)])
    def test_low_rank_grid(self, d, r_target):
        from repro.bipartite import regular_bipartite

        n_left = 60
        n_right = n_left * d // r_target
        inst = regular_bipartite(n_left, n_right, d)
        assert inst.rank == r_target
        coloring = solve_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)

    @pytest.mark.parametrize("seed", range(2))
    def test_shattering_grid(self, seed):
        inst = random_left_regular(700, 700, 12, seed=seed + 20)
        coloring = solve_weak_splitting(inst, seed=seed)
        assert is_weak_splitting(inst, coloring)
