"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math

import pytest

from repro.bipartite import (
    BipartiteInstance,
    random_left_regular,
    random_near_regular,
    regular_bipartite,
)


@pytest.fixture
def small_regular():
    """A small deterministic left-5-regular instance (40 + 40 nodes)."""
    return regular_bipartite(40, 40, 5)


@pytest.fixture
def splittable_instance():
    """An instance comfortably above the δ >= 2 log n threshold.

    n = 600, 2 log n ≈ 18.5; left degree 24.
    """
    return random_left_regular(300, 300, 24, seed=11)


@pytest.fixture
def low_rank_instance():
    """δ >= 6r instance: left degree 12, rank exactly 2."""
    return regular_bipartite(50, 300, 12)


def path_graph(n: int):
    """Adjacency list of the n-node path."""
    return [
        [x for x in (v - 1, v + 1) if 0 <= x < n]
        for v in range(n)
    ]


def cycle_graph(n: int):
    """Adjacency list of the n-node cycle."""
    return [[(v - 1) % n, (v + 1) % n] for v in range(n)]


def complete_graph(n: int):
    """Adjacency list of K_n."""
    return [[w for w in range(n) if w != v] for v in range(n)]
