"""Tests for the greedy conditional-expectation driver."""

import pytest

from repro.bipartite import BipartiteInstance, random_left_regular
from repro.derand import (
    DerandomizationError,
    WeakSplittingEstimator,
    greedy_minimize,
)
from repro.core import is_weak_splitting


class TestGreedyMinimize:
    def test_success_when_certified(self):
        # delta = 8, n = 24 + 40 = 64 constraints... 2*2^-8 * 24 = 0.1875 < 1
        inst = random_left_regular(24, 40, 8, seed=1)
        est = WeakSplittingEstimator(inst)
        assert est.value() < 1
        coloring = greedy_minimize(est, range(inst.n_right))
        assert is_weak_splitting(inst, coloring)

    def test_colors_every_node_in_order(self):
        inst = random_left_regular(10, 15, 8, seed=2)
        coloring = greedy_minimize(WeakSplittingEstimator(inst), range(inst.n_right))
        assert all(c in (0, 1) for c in coloring)

    def test_strict_raises_when_uncertified(self):
        # degree 1 constraints: initial value = 2 * 0.5 * n_left >= 1
        inst = BipartiteInstance(2, 2, [(0, 0), (1, 1)])
        with pytest.raises(DerandomizationError):
            greedy_minimize(WeakSplittingEstimator(inst), range(2))

    def test_non_strict_runs_anyway(self):
        inst = BipartiteInstance(1, 2, [(0, 0), (0, 1)])
        est = WeakSplittingEstimator(inst)
        coloring = greedy_minimize(est, range(2), strict=False)
        # degree-2 constraint: greedy still finds red+blue
        assert sorted(coloring) == [0, 1]

    def test_duplicate_order_rejected(self):
        inst = random_left_regular(4, 6, 5, seed=3)
        est = WeakSplittingEstimator(inst)
        with pytest.raises(ValueError):
            greedy_minimize(est, [0, 0, 1, 2, 3, 4], strict=False)

    def test_arbitrary_order_still_valid(self):
        inst = random_left_regular(20, 30, 9, seed=4)
        order = sorted(range(30), key=lambda v: -v)
        coloring = greedy_minimize(WeakSplittingEstimator(inst), order)
        assert is_weak_splitting(inst, coloring)
