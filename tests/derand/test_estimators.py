"""Tests for the pessimistic estimators."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bipartite import BLUE, RED, BipartiteInstance, random_left_regular
from repro.derand import (
    MissingColorEstimator,
    OverloadEstimator,
    WeakSplittingEstimator,
)


def star(d: int) -> BipartiteInstance:
    """One constraint with d private variables."""
    return BipartiteInstance(1, d, [(0, v) for v in range(d)])


class TestWeakSplittingEstimator:
    def test_initial_value_formula(self):
        est = WeakSplittingEstimator(star(4))
        assert est.value() == pytest.approx(2 * 0.5**4)

    def test_initial_sums_over_constraints(self):
        inst = BipartiteInstance(2, 4, [(0, 0), (0, 1), (1, 2), (1, 3)])
        est = WeakSplittingEstimator(inst)
        assert est.value() == pytest.approx(2 * (2 * 0.5**2))

    def test_gain_matches_commit(self):
        inst = random_left_regular(10, 12, 4, seed=1)
        est = WeakSplittingEstimator(inst)
        g = est.gain(0, RED)
        before = est.value()
        est.commit(0, RED)
        assert est.value() == pytest.approx(before + g)

    def test_martingale_average_over_colors(self):
        """E over the two colors of the new value equals the old value."""
        inst = random_left_regular(8, 10, 5, seed=2)
        est = WeakSplittingEstimator(inst)
        for v in range(inst.n_right):
            avg_gain = (est.gain(v, RED) + est.gain(v, BLUE)) / 2
            assert avg_gain == pytest.approx(0.0, abs=1e-12)
            est.commit(v, est.best_color(v))

    def test_best_color_never_increases(self):
        inst = random_left_regular(8, 10, 5, seed=3)
        est = WeakSplittingEstimator(inst)
        for v in range(inst.n_right):
            c = est.best_color(v)
            assert est.gain(v, c) <= 1e-12
            est.commit(v, c)

    def test_final_value_counts_violations(self):
        inst = star(2)
        est = WeakSplittingEstimator(inst)
        est.commit(0, RED)
        est.commit(1, RED)  # monochromatic: 1 violation (no blue)
        assert est.violations() == 1
        assert est.value() == pytest.approx(1.0)

    def test_satisfied_constraint_contributes_zero(self):
        inst = star(2)
        est = WeakSplittingEstimator(inst)
        est.commit(0, RED)
        est.commit(1, BLUE)
        assert est.violations() == 0
        assert est.value() == pytest.approx(0.0)

    def test_invalid_color_rejected(self):
        with pytest.raises(ValueError):
            WeakSplittingEstimator(star(2)).gain(0, 5)


class TestMissingColorEstimator:
    def test_initial_value_formula(self):
        est = MissingColorEstimator(star(6), palette_size=3)
        assert est.value() == pytest.approx(3 * (2 / 3) ** 6)

    def test_martingale_over_palette(self):
        inst = random_left_regular(6, 9, 5, seed=4)
        est = MissingColorEstimator(inst, palette_size=4)
        for v in range(inst.n_right):
            avg = sum(est.gain(v, c) for c in range(4)) / 4
            assert avg == pytest.approx(0.0, abs=1e-12)
            est.commit(v, est.best_color(v))

    def test_all_colors_seen_means_zero(self):
        est = MissingColorEstimator(star(3), palette_size=3)
        for v, c in enumerate([0, 1, 2]):
            est.commit(v, c)
        assert est.value() == pytest.approx(0.0)
        assert est.violations() == 0

    def test_missing_color_counted(self):
        est = MissingColorEstimator(star(3), palette_size=3)
        for v in range(3):
            est.commit(v, 0)
        assert est.violations() == 1  # colors 1 and 2 missing -> constraint fails
        assert est.value() == pytest.approx(2.0)  # two missing (u, x) pairs

    def test_rejects_tiny_palette(self):
        with pytest.raises(ValueError):
            MissingColorEstimator(star(3), palette_size=1)


class TestOverloadEstimator:
    def test_requires_t_above_one(self):
        with pytest.raises(ValueError):
            OverloadEstimator(star(10), num_colors=4, lam=0.2)  # t = 0.8

    def test_initial_value_matches_equation_2_shape(self):
        d, C, lam = 60, 10, 0.5
        est = OverloadEstimator(star(d), num_colors=C, lam=lam)
        # per (u, x): phi^d / t^(T+1); summed over C colors
        t = lam * C
        phi = 1 - 1 / C + t / C
        expected = C * phi**d / t ** (math.ceil(lam * d) + 1)
        assert est.value() == pytest.approx(expected)

    def test_martingale_over_colors(self):
        inst = random_left_regular(5, 8, 6, seed=5)
        est = OverloadEstimator(inst, num_colors=4, lam=0.6)
        for v in range(inst.n_right):
            avg = sum(est.gain(v, c) for c in range(4)) / 4
            assert avg == pytest.approx(0.0, abs=1e-9)
            est.commit(v, est.best_color(v))

    def test_violation_detection(self):
        est = OverloadEstimator(star(4), num_colors=2, lam=0.55)  # cap ceil(2.2)=3
        for v in range(4):
            est.commit(v, 0)
        assert est.violations() == 1

    def test_within_cap_no_violation(self):
        est = OverloadEstimator(star(4), num_colors=2, lam=0.75)  # cap 3
        for v, c in enumerate([0, 0, 0, 1]):
            est.commit(v, c)
        assert est.violations() == 0

    def test_estimator_dominates_violations(self):
        """Final estimator value >= number of violated constraints."""
        rng = random.Random(6)
        inst = random_left_regular(6, 10, 5, seed=7)
        est = OverloadEstimator(inst, num_colors=3, lam=0.5)
        for v in range(inst.n_right):
            est.commit(v, rng.randrange(3))
        assert est.value() >= est.violations() - 1e-9


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_random_play_keeps_weak_estimator_bounded_on_average(seed):
    """Committing the greedy argmin never exceeds the initial value."""
    inst = random_left_regular(6, 8, 4, seed=seed % 1000)
    est = WeakSplittingEstimator(inst)
    initial = est.value()
    rng = random.Random(seed)
    order = list(range(inst.n_right))
    rng.shuffle(order)
    for v in order:
        c = est.best_color(v)
        est.commit(v, c)
    assert est.value() <= initial + 1e-9
