"""Tests for the analytic round-complexity formulas."""

import pytest

from repro.local import (
    degree_splitting_rounds,
    degree_splitting_rounds_simplified,
    log_star,
    power_graph_coloring_rounds,
    slocal_conversion_rounds,
)


class TestLogStar:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 1), (4, 2), (16, 3), (65536, 4)])
    def test_known_values(self, n, expected):
        assert log_star(n) == expected

    def test_monotone(self):
        assert log_star(2**70) >= log_star(1000) >= log_star(4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            log_star(-1)


class TestDegreeSplittingRounds:
    def test_scales_inversely_with_eps(self):
        assert degree_splitting_rounds(0.01, 1000) > degree_splitting_rounds(0.1, 1000)

    def test_log_n_tail_deterministic(self):
        r1 = degree_splitting_rounds(0.1, 2**10)
        r2 = degree_splitting_rounds(0.1, 2**20)
        assert r2 == pytest.approx(2 * r1)

    def test_randomized_is_cheaper(self):
        n = 2**20
        assert degree_splitting_rounds(0.1, n, randomized=True) < degree_splitting_rounds(0.1, n)

    def test_randomized_loglog_tail(self):
        # log log grows from 2^16 -> 4 to 2^256 -> 8: exactly doubles
        r1 = degree_splitting_rounds(0.1, 2**16, randomized=True)
        r2 = degree_splitting_rounds(0.1, 2**256, randomized=True)
        assert r2 == pytest.approx(2 * r1)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            degree_splitting_rounds(0, 100)
        with pytest.raises(ValueError):
            degree_splitting_rounds(0.1, 1)

    def test_simplified_bound_close_in_shape(self):
        full = degree_splitting_rounds(0.05, 10**6)
        simple = degree_splitting_rounds_simplified(0.05, 10**6)
        assert 0.1 < simple / full < 10


class TestConversions:
    def test_slocal_rounds_scale_with_colors(self):
        assert slocal_conversion_rounds(10) == 2 * slocal_conversion_rounds(5)

    def test_slocal_radius_factor(self):
        assert slocal_conversion_rounds(6, radius=4) == 2 * slocal_conversion_rounds(6, radius=2)

    def test_slocal_rejects_zero_colors(self):
        with pytest.raises(ValueError):
            slocal_conversion_rounds(0)

    def test_power_coloring_has_log_star_floor(self):
        assert power_graph_coloring_rounds(0, 2**16) == log_star(2**16)

    def test_power_coloring_linear_in_degree(self):
        big = power_graph_coloring_rounds(1000, 100)
        small = power_graph_coloring_rounds(10, 100)
        assert big - small == 990
