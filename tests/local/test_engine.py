"""Engine-vs-reference equivalence and CSR engine behaviour tests.

The batched engine's contract is *bit-identical* execution: for any
algorithm, network and seed, :func:`run_local_fast` must produce the same
outputs, states, round counts and completion flags as the reference
:func:`run_local` — including inbox dict insertion order, which some
algorithms can observe by iterating ``inbox.values()``.
"""

import random
from typing import Dict

import pytest

from repro.bipartite.generators import (
    configuration_model_regular,
    grid_graph,
    random_sparse_graph,
)
from repro.local import (
    NO_BROADCAST,
    CSREngine,
    LocalAlgorithm,
    Network,
    run_local,
    run_local_fast,
)
from repro.mis.luby import LubyMIS
from repro.orientation.sinkless import TrialAndFixSinkless
from tests.conftest import cycle_graph, path_graph


class Flood(LocalAlgorithm):
    """Min-uid flooding; order-insensitive reduction."""

    def init(self, view):
        view.state["best"] = view.uid

    def send(self, view, round_no):
        return {p: view.state["best"] for p in range(view.degree)}

    def receive(self, view, round_no, inbox):
        incoming = min(inbox.values(), default=view.state["best"])
        view.state["best"] = min(view.state["best"], incoming)
        view.output = view.state["best"]


class InboxOrderRecorder(LocalAlgorithm):
    """Records the exact (port, message) arrival order — the strictest probe
    of inbox construction equivalence between the two executors."""

    def init(self, view):
        view.state["log"] = []

    def send(self, view, round_no):
        # Distinct message per port so multi-edge pairings are observable.
        return {p: (view.uid, p, round_no) for p in range(view.degree)}

    def receive(self, view, round_no, inbox):
        view.state["log"].append(list(inbox.items()))
        if round_no >= 3:
            view.output = view.state["log"]
            view.halted = True


class BroadcastRecorder(LocalAlgorithm):
    """Broadcast algorithm that also counts which send hooks ran."""

    def __init__(self):
        self.send_calls = 0

    def init(self, view):
        view.state["seen"] = []

    def broadcast(self, view, round_no):
        return ("bc", view.uid, round_no)

    def send(self, view, round_no):
        self.send_calls += 1
        msg = ("bc", view.uid, round_no)
        return {p: msg for p in range(view.degree)}

    def receive(self, view, round_no, inbox):
        view.state["seen"].append(sorted(inbox.items()))
        if round_no >= 2:
            view.output = view.state["seen"]
            view.halted = True


class HaltAfter(LocalAlgorithm):
    def __init__(self, rounds):
        self.rounds = rounds

    def init(self, view):
        pass

    def send(self, view, round_no):
        return {}

    def receive(self, view, round_no, inbox):
        if round_no >= self.rounds:
            view.halted = True
            view.output = round_no


class BadPort(LocalAlgorithm):
    def init(self, view):
        pass

    def send(self, view, round_no):
        return {view.degree: "oops"}

    def receive(self, view, round_no, inbox):
        pass


def assert_equivalent(net: Network, algorithm_factory, seed: int, max_rounds: int = 50):
    ref = run_local(net, algorithm_factory(), max_rounds=max_rounds, seed=seed)
    fast = run_local_fast(net, algorithm_factory(), max_rounds=max_rounds, seed=seed)
    assert ref.rounds == fast.rounds
    assert ref.completed == fast.completed
    assert ref.outputs() == fast.outputs()
    for rv, fv in zip(ref.views, fast.views):
        assert rv.state == fv.state
        assert rv.halted == fv.halted


class TestEquivalenceProperty:
    """Randomized property tests over graphs x seeds x algorithms."""

    def test_random_sparse_graphs(self):
        for trial in range(6):
            rng = random.Random(trial)
            n = rng.randint(4, 60)
            adj = random_sparse_graph(n, min(n - 1, rng.uniform(1, 6)), seed=trial)
            net = Network(adj)
            for seed in (0, 1, 7):
                assert_equivalent(net, Flood, seed)
                assert_equivalent(net, LubyMIS, seed)
                assert_equivalent(net, InboxOrderRecorder, seed)

    def test_regular_and_grid_topologies(self):
        nets = [
            Network(configuration_model_regular(30, 4, seed=2)),
            Network(grid_graph(5, 6)),
            Network(grid_graph(4, 4, periodic=False)),
            Network(cycle_graph(17)),
        ]
        for net in nets:
            for seed in (3, 11):
                assert_equivalent(net, LubyMIS, seed)
                assert_equivalent(net, lambda: TrialAndFixSinkless(min_degree=1), seed)

    def test_multi_edge_networks(self):
        # Parallel edges exercise the order-of-appearance port pairing.
        for adjacency in (
            [[1, 1], [0, 0]],
            [[1, 1, 1], [0, 0, 0]],
            [[1, 1, 2], [0, 0, 2], [0, 1]],
        ):
            net = Network(adjacency)
            for seed in (0, 5):
                assert_equivalent(net, InboxOrderRecorder, seed)
                assert_equivalent(net, Flood, seed)

    def test_shuffled_ids(self):
        adj = random_sparse_graph(25, 3, seed=9)
        net = Network(adj, ids=[1000 - i for i in range(25)])
        for seed in (0, 2):
            assert_equivalent(net, LubyMIS, seed)
            assert_equivalent(net, InboxOrderRecorder, seed)


class TestBroadcastFastPath:
    def test_broadcast_matches_reference(self):
        net = Network(random_sparse_graph(20, 4, seed=1))
        assert_equivalent(net, BroadcastRecorder, seed=0)

    def test_broadcast_bypasses_send(self):
        net = Network(cycle_graph(6))
        algo = BroadcastRecorder()
        result = run_local_fast(net, algo, max_rounds=5)
        assert algo.send_calls == 0
        assert result.completed
        # every node heard both neighbors each round
        for view in result.views:
            assert all(len(seen) == 2 for seen in view.state["seen"])

    def test_reference_also_honors_broadcast(self):
        net = Network(cycle_graph(6))
        algo = BroadcastRecorder()
        run_local(net, algo, max_rounds=5)
        assert algo.send_calls == 0

    def test_no_broadcast_falls_back_to_send(self):
        net = Network(path_graph(4))
        result = run_local_fast(net, Flood(), max_rounds=6)
        assert all(v.output == 0 for v in result.views)


class TestEngineBehaviour:
    def test_zero_max_rounds(self):
        net = Network(path_graph(3))
        result = run_local_fast(net, Flood(), max_rounds=0)
        assert result.rounds == 0 and not result.completed
        ref = run_local(net, Flood(), max_rounds=0)
        assert ref.rounds == result.rounds and ref.completed == result.completed

    def test_zero_max_rounds_all_halted_in_init(self):
        class HaltImmediately(LocalAlgorithm):
            def init(self, view):
                view.halted = True
                view.output = "done"

            def send(self, view, round_no):
                return {}

            def receive(self, view, round_no, inbox):
                pass

        net = Network(path_graph(3))
        result = run_local_fast(net, HaltImmediately(), max_rounds=0)
        assert result.completed and result.rounds == 0

    def test_negative_max_rounds_rejected(self):
        net = Network(path_graph(2))
        with pytest.raises(ValueError):
            run_local_fast(net, Flood(), max_rounds=-1)

    def test_invalid_port_rejected(self):
        net = Network(path_graph(2))
        with pytest.raises(ValueError):
            run_local_fast(net, BadPort(), max_rounds=1)

    def test_round_cap_reported(self):
        net = Network(cycle_graph(4))
        result = run_local_fast(net, HaltAfter(50), max_rounds=5)
        assert result.rounds == 5 and not result.completed

    def test_early_halt(self):
        net = Network(cycle_graph(4))
        result = run_local_fast(net, HaltAfter(3), max_rounds=100)
        assert result.rounds == 3 and result.completed

    def test_engine_reuse_across_runs_and_seeds(self):
        net = Network(random_sparse_graph(30, 4, seed=4))
        engine = CSREngine(net)
        a = engine.run(LubyMIS(), seed=5)
        b = engine.run(LubyMIS(), seed=5)
        c = engine.run(LubyMIS(), seed=6)
        assert a.outputs() == b.outputs()
        assert a.outputs() != c.outputs() or a.rounds != c.rounds

    def test_csr_arrays_shape(self):
        adj = [[1, 1, 2], [0, 0, 2], [0, 1]]
        engine = CSREngine(Network(adj))
        assert engine.offsets == [0, 3, 6, 8]
        assert len(engine.dst_node) == len(engine.dst_port) == 8
        # every slot points back at a slot that points here
        for i in range(3):
            for p in range(engine.offsets[i], engine.offsets[i + 1]):
                j = engine.dst_node[p]
                q = engine.dst_port[p]
                back = engine.offsets[j] + q
                assert engine.dst_node[back] == i

    def test_probe_stops_simulation(self):
        net = Network(cycle_graph(8))
        calls = []

        def probe(round_no, views):
            calls.append(round_no)
            return round_no >= 3

        result = CSREngine(net).run(Flood(), max_rounds=100, probe=probe)
        assert result.rounds == 3
        assert calls == [1, 2, 3]
        assert not result.completed  # flood never halts on its own

    def test_probe_not_called_after_completion(self):
        net = Network(cycle_graph(4))
        calls = []

        def probe(round_no, views):
            calls.append(round_no)
            return False

        result = CSREngine(net).run(HaltAfter(2), max_rounds=10, probe=probe)
        assert result.completed and result.rounds == 2
        assert calls == [1]  # all nodes halt in round 2: probe skipped

    def test_sentinel_identity(self):
        # The sentinel must be compared by identity and survive repr.
        assert repr(NO_BROADCAST) == "NO_BROADCAST"
        assert NO_BROADCAST is not None
