"""Tests for identifier assignment schemes."""

from repro.local import sequential_ids, shuffled_ids, sparse_random_ids


def test_sequential():
    assert sequential_ids(4) == [0, 1, 2, 3]


def test_sequential_empty():
    assert sequential_ids(0) == []


def test_shuffled_is_permutation():
    ids = shuffled_ids(20, seed=1)
    assert sorted(ids) == list(range(20))


def test_shuffled_seeded():
    assert shuffled_ids(20, seed=1) == shuffled_ids(20, seed=1)
    assert shuffled_ids(20, seed=1) != shuffled_ids(20, seed=2)


def test_sparse_unique_and_in_universe():
    ids = sparse_random_ids(50, seed=3, universe_factor=100)
    assert len(set(ids)) == 50
    assert all(0 <= x < 5000 for x in ids)


def test_sparse_empty():
    assert sparse_random_ids(0, seed=1) == []
