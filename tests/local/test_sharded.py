"""Sharded CSR execution (`repro.local.sharded`).

The contract under test is *bit-identity*: for any shard plan, a sharded
trial must reproduce the single-process ``coins="keyed"`` dense kernel
exactly — MIS membership / orientation bits / colors, round counts,
completion flags and crash records — because shard workers recompute
keyed coins from global node/slot indices and exchange only boundary
state.  Most cases run the executor inline (``workers=0``: same step
functions and halo exchange, no pool) so the suite stays fast on 1-CPU
boxes; a handful run real worker processes to cover the shared-memory
transport, the pickle fallback and the kill-and-heal replay path.
"""

import pytest

from repro.bipartite.generators import random_regular_graph, random_sparse_graph
from repro.core.problems import UniformSplittingSpec
from repro.local import CSREngine, Network
from repro.local.dense import (
    luby_mis_dense,
    sinkless_trial_dense,
    uniform_splitting_dense,
)
from repro.local.sharded import (
    ShardedExecutor,
    luby_mis_sharded,
    plan_shards,
    sinkless_trial_sharded,
    uniform_splitting_sharded,
)
from repro.scenarios import CrashNodes, IIDMessageDrop, MuteHubs, bind_all
from repro.scenarios.masks import DenseFaults
from repro.utils.rng import ensure_rng

SHARD_COUNTS = (1, 2, 7)


def engine_of(adj):
    engine = CSREngine(Network(adj))
    engine.dense_arrays()
    return engine


def multigraph(n=40, extra=60, seed=3):
    """A connected multigraph: a cycle plus repeated random parallel edges."""
    adj = [[(i - 1) % n, (i + 1) % n] for i in range(n)]
    rng = ensure_rng(seed)
    for _ in range(extra):
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a == b:
            continue
        adj[a].append(b)
        adj[b].append(a)
    return adj


def assert_luby_matches(engine, seed, reference, **kwargs):
    result = luby_mis_sharded(engine, seed=seed, workers=0, **kwargs)
    assert result.rounds == reference.rounds
    assert result.completed == reference.completed
    assert (result.in_mis == reference.in_mis).all()
    assert (result.crashed == reference.crashed).all()
    return result


class TestLubyBitIdentity:
    def test_shard_counts(self):
        engine = engine_of(random_sparse_graph(150, 8, seed=1))
        for seed in range(3):
            reference = luby_mis_dense(engine, seed=seed, coins="keyed")
            for shards in SHARD_COUNTS:
                assert_luby_matches(engine, seed, reference, shards=shards)

    def test_uneven_explicit_bounds(self):
        engine = engine_of(random_sparse_graph(120, 10, seed=2))
        reference = luby_mis_dense(engine, seed=5, coins="keyed")
        with ShardedExecutor(engine, bounds=[3, 7, 110], workers=0) as ex:
            result = luby_mis_sharded(engine, seed=5, executor=ex)
        assert result.rounds == reference.rounds
        assert (result.in_mis == reference.in_mis).all()

    def test_multigraph(self):
        engine = engine_of(multigraph())
        for shards in SHARD_COUNTS:
            reference = luby_mis_dense(engine, seed=9, coins="keyed")
            assert_luby_matches(engine, 9, reference, shards=shards)

    @pytest.mark.parametrize("max_rounds", [0, 1, 2, 3, 5])
    def test_round_caps_freeze_identically(self, max_rounds):
        engine = engine_of(random_sparse_graph(100, 12, seed=4))
        reference = luby_mis_dense(
            engine, seed=1, coins="keyed", max_rounds=max_rounds
        )
        assert_luby_matches(engine, 1, reference, shards=3, max_rounds=max_rounds)


class TestFaultyBitIdentity:
    def faults(self, engine, fault_seed=11):
        perts = (
            CrashNodes(fraction=0.1, at_round=2),
            IIDMessageDrop(p=0.15, from_round=1, until_round=4),
            MuteHubs(),
        )
        bound = bind_all(perts, engine.network, fault_seed=fault_seed,
                         fault_mode="mask")
        return DenseFaults(engine, bound)

    def test_luby_under_fault_stack(self):
        engine = engine_of(random_sparse_graph(150, 8, seed=6))
        reference = luby_mis_dense(
            engine, seed=2, coins="keyed", faults=self.faults(engine)
        )
        assert reference.crashed.any()
        for shards in SHARD_COUNTS:
            assert_luby_matches(
                engine, 2, reference, shards=shards, faults=self.faults(engine)
            )

    def test_sinkless_under_drops(self):
        engine = engine_of(random_regular_graph(60, 4, seed=7))
        faults = (IIDMessageDrop(p=0.1, from_round=1, until_round=3),)
        bound = bind_all(faults, engine.network, fault_seed=3, fault_mode="mask")
        reference = sinkless_trial_dense(
            engine, min_degree=2, seed=1, coins="keyed",
            faults=DenseFaults(engine, bound),
        )
        for shards in SHARD_COUNTS:
            result = sinkless_trial_sharded(
                engine, min_degree=2, seed=1, shards=shards, workers=0,
                faults=DenseFaults(engine, bound),
            )
            assert result.rounds == reference.rounds
            assert (result.out == reference.out).all()
            assert (result.crashed == reference.crashed).all()

    def test_splitting_under_crashes(self):
        engine = engine_of(random_sparse_graph(200, 24, seed=8))
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=8)
        perts = (CrashNodes(fraction=0.05, at_round=1),)
        bound = bind_all(perts, engine.network, fault_seed=5, fault_mode="mask")
        result = uniform_splitting_sharded(
            engine, spec, seed=3, shards=2, workers=0,
            faults=DenseFaults(engine, bound),
        )
        # Mirror the sequential Las-Vegas loop's attempt-seed stream.
        rng = ensure_rng(3)
        for _ in range(result.attempts):
            run_seed = rng.randrange(2**31)
        reference = uniform_splitting_dense(
            engine, spec, seed=run_seed, coins="keyed",
            faults=DenseFaults(engine, bound),
        )
        assert (result.colors == reference.colors).all()
        assert (result.crashed == reference.crashed).all()
        assert bool(result.ok) == bool(reference.ok)


class TestSinklessAndSplitting:
    def test_sinkless_shard_counts(self):
        engine = engine_of(random_regular_graph(80, 4, seed=10))
        for seed in range(2):
            reference = sinkless_trial_dense(
                engine, min_degree=1, seed=seed, coins="keyed"
            )
            for shards in SHARD_COUNTS:
                result = sinkless_trial_sharded(
                    engine, min_degree=1, seed=seed, shards=shards, workers=0
                )
                assert result.rounds == reference.rounds
                assert result.completed == reference.completed
                assert (result.out == reference.out).all()

    def test_sinkless_rejects_multigraphs(self):
        engine = engine_of(multigraph())
        with pytest.raises(Exception, match="simple graph"):
            sinkless_trial_sharded(engine, seed=0, shards=2, workers=0)

    def test_splitting_shard_counts(self):
        engine = engine_of(random_sparse_graph(200, 24, seed=12))
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=8)
        for shards in SHARD_COUNTS:
            result = uniform_splitting_sharded(
                engine, spec, seed=1, shards=shards, workers=0
            )
            assert result.ok and result.attempts >= 1
            rng = ensure_rng(1)
            for _ in range(result.attempts):
                run_seed = rng.randrange(2**31)
            reference = uniform_splitting_dense(
                engine, spec, seed=run_seed, coins="keyed"
            )
            assert (result.colors == reference.colors).all()


class TestShardPlans:
    def test_empty_graph_keeps_one_shard(self):
        engine = engine_of([])
        plan = plan_shards(engine, shards=4)
        assert len(plan) == 1
        result = luby_mis_sharded(engine, seed=0, shards=4, workers=0)
        assert result.completed and result.in_mis.shape == (0,)

    def test_more_shards_than_nodes(self):
        engine = engine_of([[1], [0], [3], [2]])
        reference = luby_mis_dense(engine, seed=0, coins="keyed")
        assert_luby_matches(engine, 0, reference, shards=19)

    def test_max_shard_slots_sizes_the_plan(self):
        engine = engine_of(random_sparse_graph(120, 10, seed=13))
        offsets, dst_node, _ = engine.dense_arrays()
        m = int(dst_node.shape[0])
        plan = plan_shards(engine, max_shard_slots=200)
        assert len(plan) == -(-m // 200) >= 2
        # Cuts are node-aligned, so a shard may overshoot the budget by at
        # most one node's row of slots.
        max_degree = int(max(offsets[i + 1] - offsets[i]
                             for i in range(engine.n)))
        for spec in plan.specs:
            assert int(spec.offsets[-1]) <= 200 + max_degree

    def test_isolated_nodes_and_singleton_components(self):
        adj = [[], [2], [1], [], [5], [4], []]
        engine = engine_of(adj)
        reference = luby_mis_dense(engine, seed=0, coins="keyed")
        for shards in SHARD_COUNTS:
            assert_luby_matches(engine, 0, reference, shards=shards)


class TestRealWorkerPool:
    """Real process-pool coverage: transports, batching and healing."""

    def test_shm_transport(self):
        engine = engine_of(random_sparse_graph(300, 10, seed=14))
        reference = luby_mis_dense(engine, seed=1, coins="keyed")
        result = luby_mis_sharded(engine, seed=1, shards=2)
        assert result.rounds == reference.rounds
        assert (result.in_mis == reference.in_mis).all()

    def test_pickle_transport(self):
        engine = engine_of(random_sparse_graph(300, 10, seed=14))
        reference = luby_mis_dense(engine, seed=1, coins="keyed")
        result = luby_mis_sharded(engine, seed=1, shards=2, transport="pickle")
        assert result.rounds == reference.rounds
        assert (result.in_mis == reference.in_mis).all()

    def test_killed_worker_heals_and_stays_bit_identical(self):
        engine = engine_of(random_sparse_graph(200, 8, seed=15))
        reference = luby_mis_dense(engine, seed=4, coins="keyed")
        with ShardedExecutor(engine, 2) as ex:
            first = luby_mis_sharded(engine, seed=4, executor=ex)
            ex.inject_worker_failure(0)
            healed = luby_mis_sharded(engine, seed=4, executor=ex)
        assert ex.heals == 1
        for result in (first, healed):
            assert result.rounds == reference.rounds
            assert (result.in_mis == reference.in_mis).all()

    def test_executor_amortizes_partition_across_trials(self):
        engine = engine_of(random_sparse_graph(200, 8, seed=16))
        with ShardedExecutor(engine, 2) as ex:
            partition = ex.plan.partition_seconds
            for seed in range(3):
                reference = luby_mis_dense(engine, seed=seed, coins="keyed")
                result = luby_mis_sharded(engine, seed=seed, executor=ex)
                assert (result.in_mis == reference.in_mis).all()
                assert result.partition_seconds == partition
            assert ex.halo_seconds >= 0.0


class TestPipelineDispatch:
    """`method="dense-sharded"` through the public pipeline entry points."""

    def test_luby_mis_dispatch_and_batch(self):
        from repro.mis.luby import is_mis, luby_mis

        adj = random_sparse_graph(150, 8, seed=17)
        mis, rounds = luby_mis(adj, seed=1, method="dense-sharded", shards=2)
        engine = engine_of(adj)
        reference = luby_mis_dense(engine, seed=1, coins="keyed")
        assert mis == {int(i) for i in reference.in_mis.nonzero()[0]}
        assert rounds == reference.rounds
        assert is_mis(adj, mis)
        batch = luby_mis(adj, seed=[0, 1], method="dense-sharded", shards=2)
        assert batch[1] == (mis, rounds)

    def test_luby_mis_rejects_replay_coins(self):
        from repro.mis.luby import luby_mis

        with pytest.raises(Exception, match="keyed"):
            luby_mis([[1], [0]], method="dense-sharded", coins="replay")

    def test_sinkless_dispatch(self):
        from repro.orientation.sinkless import run_trial_and_fix

        adj = random_regular_graph(60, 4, seed=18)
        orientation, rounds = run_trial_and_fix(
            adj, min_degree=1, seed=1, method="dense-sharded", shards=2
        )
        engine = engine_of(adj)
        reference = sinkless_trial_dense(engine, min_degree=1, seed=1,
                                         coins="keyed")
        assert rounds == reference.rounds

    def test_splitting_dispatch(self):
        from repro.apps.splitting import uniform_splitting

        adj = random_sparse_graph(200, 24, seed=19)
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=8)
        colors = uniform_splitting(adj, spec, seed=1, method="dense-sharded",
                                   shards=2)
        assert len(colors) == 200 and set(colors) <= {0, 1}
