"""Tests for the round ledger."""

import pytest

from repro.local import Charge, RoundLedger


class TestCharge:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Charge(label="x", rounds=-1)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Charge(label="x", rounds=1, kind="magic")


class TestLedger:
    def test_total_accumulates(self):
        led = RoundLedger()
        led.charge(5, "a")
        led.charge(7, "b")
        assert led.total == 12

    def test_breakdown_groups_labels(self):
        led = RoundLedger()
        led.charge(5, "a")
        led.charge(2, "a")
        led.charge(1, "b")
        assert led.breakdown() == {"a": 7.0, "b": 1.0}

    def test_kinds_separated(self):
        led = RoundLedger()
        led.charge(5, "a")
        led.charge_simulated(3, "b")
        assert led.analytic_total() == 5 and led.simulated_total() == 3

    def test_parallel_takes_max(self):
        children = []
        for r in (3, 9, 5):
            c = RoundLedger()
            c.charge(r, "work")
            children.append(c)
        led = RoundLedger()
        led.charge_parallel(children, "components")
        assert led.total == 9

    def test_parallel_empty_charges_zero(self):
        led = RoundLedger()
        led.charge_parallel([], "none")
        assert led.total == 0

    def test_merge_is_sequential(self):
        a, b = RoundLedger(), RoundLedger()
        a.charge(2, "x")
        b.charge(3, "y")
        a.merge(b)
        assert a.total == 5 and len(a) == 2

    def test_iteration_order_preserved(self):
        led = RoundLedger()
        led.charge(1, "first")
        led.charge(2, "second")
        assert [c.label for c in led] == ["first", "second"]
