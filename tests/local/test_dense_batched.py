"""Trial-batched dense kernels: bit-identity to sequential keyed runs.

The contract under test (``repro/local/dense.py``): a batched run over
seeds ``s1..sk`` is **bit-identical** — MIS membership, orientation slot
states, splitting colors, round counts, completion flags and crash
records — to ``k`` independent sequential ``coins="keyed"`` runs of the
same kernel, because every coin is a pure hash of ``(seed, counter,
round)`` and the batched kernels recompute exactly those hashes at
whatever (trial, node, round) triples are still active.  Property-tested
on random graphs, including a mask-mode faulty scenario, ragged
termination, and mid-phase ``max_rounds`` caps.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.bipartite.generators import (  # noqa: E402
    configuration_model_regular,
    random_sparse_graph,
)
from repro.core.problems import UniformSplittingSpec  # noqa: E402
from repro.local import CSREngine, Network  # noqa: E402
from repro.local.dense import (  # noqa: E402
    luby_mis_batched,
    luby_mis_dense,
    sinkless_trial_batched,
    sinkless_trial_dense,
    uniform_splitting_batched,
    uniform_splitting_dense,
)
from repro.scenarios.base import bind_all  # noqa: E402
from repro.scenarios.faults import CrashNodes, IIDMessageDrop  # noqa: E402
from repro.scenarios.masks import DenseFaults  # noqa: E402
from repro.utils.rng import CoinTable, ensure_rng  # noqa: E402

SEEDS = list(range(10))


def sparse_engine(n=300, deg=6, gseed=7):
    return CSREngine(Network(random_sparse_graph(n, deg, seed=gseed)))


def regular_engine(n=120, deg=4, gseed=11):
    return CSREngine(Network(configuration_model_regular(n, deg, seed=gseed)))


def assert_luby_identical(engine, seeds, batch, **kwargs):
    for t, s in enumerate(seeds):
        seq = luby_mis_dense(engine, seed=s, coins="keyed", **kwargs)
        assert np.array_equal(batch.in_mis[t], seq.in_mis)
        assert np.array_equal(batch.crashed[t], seq.crashed)
        assert int(batch.rounds[t]) == seq.rounds
        assert bool(batch.completed[t]) == seq.completed


class TestLubyBatchedBitIdentity:
    def test_matches_sequential_keyed_runs(self):
        for gseed in (7, 8):
            engine = sparse_engine(gseed=gseed)
            batch = luby_mis_batched(engine, SEEDS)
            assert_luby_identical(engine, SEEDS, batch)

    def test_ragged_trials_freeze_independently(self):
        engine = sparse_engine()
        batch = luby_mis_batched(engine, SEEDS)
        # different seeds genuinely finish at different rounds — the
        # active-trial mask must freeze each one exactly where the
        # sequential run stops
        assert np.unique(batch.rounds).shape[0] >= 2
        assert bool(batch.completed.all())

    def test_pooled_phases_preserve_identity(self):
        # a tiny pool threshold forces every trial through the communal
        # compressed state almost immediately
        engine = sparse_engine()
        batch = luby_mis_batched(engine, SEEDS, pool_pairs=32)
        assert_luby_identical(engine, SEEDS, batch)

    def test_max_rounds_caps_match_including_mid_phase(self):
        engine = sparse_engine(n=150, deg=5, gseed=3)
        for cap in (0, 1, 2, 3, 4, 5, 6):  # odd caps break mid-phase
            batch = luby_mis_batched(engine, SEEDS, max_rounds=cap)
            assert_luby_identical(engine, SEEDS, batch, max_rounds=cap)

    def test_trial_view_slices_batch(self):
        engine = sparse_engine(n=80, deg=4, gseed=2)
        batch = luby_mis_batched(engine, [0, 1])
        one = batch.trial(1)
        seq = luby_mis_dense(engine, seed=1, coins="keyed")
        assert np.array_equal(one.in_mis, seq.in_mis)
        assert one.rounds == seq.rounds

    def test_replay_coins_rejected(self):
        engine = sparse_engine(n=40, deg=3, gseed=1)
        with pytest.raises(ValueError):
            luby_mis_batched(engine, [0, 1], coins="replay")


class TestLubyBatchedFaulty:
    def test_mask_mode_scenario_identical(self):
        engine = sparse_engine(n=250, deg=6, gseed=5)
        perts = [CrashNodes(fraction=0.05, at_round=3), IIDMessageDrop(p=0.08)]
        bound = bind_all(perts, engine.network, fault_seed=99, fault_mode="mask")
        faults = DenseFaults(engine, bound)
        batch = luby_mis_batched(engine, SEEDS, faults=faults)
        assert_luby_identical(engine, SEEDS, batch, faults=faults)

    def test_faulty_mid_phase_caps(self):
        engine = sparse_engine(n=150, deg=5, gseed=9)
        perts = [CrashNodes(fraction=0.06, at_round=2), IIDMessageDrop(p=0.1)]
        bound = bind_all(perts, engine.network, fault_seed=4, fault_mode="mask")
        faults = DenseFaults(engine, bound)
        for cap in (1, 2, 3, 4, 5):
            batch = luby_mis_batched(engine, SEEDS, faults=faults, max_rounds=cap)
            assert_luby_identical(engine, SEEDS, batch, faults=faults, max_rounds=cap)


class TestSinklessBatchedBitIdentity:
    def test_matches_sequential_keyed_runs(self):
        engine = regular_engine()
        batch = sinkless_trial_batched(engine, SEEDS, min_degree=3)
        for t, s in enumerate(SEEDS):
            seq = sinkless_trial_dense(engine, min_degree=3, seed=s, coins="keyed")
            assert np.array_equal(batch.out[t], seq.out)
            assert int(batch.rounds[t]) == seq.rounds
            assert bool(batch.completed[t]) == seq.completed
        # fix rounds are ragged across seeds
        assert np.unique(batch.rounds).shape[0] >= 2

    def test_mask_mode_scenario_identical(self):
        engine = regular_engine()
        perts = [CrashNodes(fraction=0.04, at_round=2), IIDMessageDrop(p=0.05)]
        bound = bind_all(perts, engine.network, fault_seed=17, fault_mode="mask")
        faults = DenseFaults(engine, bound)
        batch = sinkless_trial_batched(
            engine, SEEDS, min_degree=3, faults=faults, strict=False
        )
        for t, s in enumerate(SEEDS):
            seq = sinkless_trial_dense(
                engine, min_degree=3, seed=s, coins="keyed", faults=faults,
                strict=False,
            )
            assert np.array_equal(batch.out[t], seq.out)
            assert np.array_equal(batch.crashed[t], seq.crashed)
            assert int(batch.rounds[t]) == seq.rounds
            assert bool(batch.completed[t]) == seq.completed

    def test_strict_raises_when_any_trial_unfinished(self):
        engine = regular_engine()
        with pytest.raises(RuntimeError):
            sinkless_trial_batched(engine, SEEDS, min_degree=3, max_rounds=1)


class TestSplittingBatchedBitIdentity:
    def sequential_las_vegas(self, engine, spec, seed, max_attempts, faults=None):
        rng = ensure_rng(int(seed))
        for attempt in range(1, max_attempts + 1):
            run_seed = rng.randrange(2**31)
            dense = uniform_splitting_dense(
                engine, spec, seed=run_seed, coins="keyed", faults=faults
            )
            if dense.ok:
                return dense, attempt
        return dense, max_attempts

    def test_matches_sequential_retry_loops(self):
        engine = CSREngine(Network(configuration_model_regular(200, 16, seed=3)))
        # eps tight enough that some seeds retry, loose enough that all land
        spec = UniformSplittingSpec(eps=0.3, min_constrained_degree=8)
        batch = uniform_splitting_batched(engine, spec, SEEDS)
        for t, s in enumerate(SEEDS):
            seq, attempts = self.sequential_las_vegas(engine, spec, s, 64)
            assert bool(batch.ok[t]) == seq.ok
            assert int(batch.attempts[t]) == attempts
            assert np.array_equal(batch.colors[t], seq.colors)

    def test_exhausted_trials_keep_last_colors(self):
        engine = CSREngine(Network(configuration_model_regular(200, 16, seed=3)))
        spec = UniformSplittingSpec(eps=0.12, min_constrained_degree=8)
        batch = uniform_splitting_batched(engine, spec, SEEDS, max_attempts=5)
        for t, s in enumerate(SEEDS):
            seq, attempts = self.sequential_las_vegas(engine, spec, s, 5)
            assert bool(batch.ok[t]) == seq.ok
            assert int(batch.attempts[t]) == attempts
            assert np.array_equal(batch.colors[t], seq.colors)

    def test_mask_mode_scenario_identical(self):
        engine = CSREngine(Network(configuration_model_regular(200, 16, seed=3)))
        spec = UniformSplittingSpec(eps=0.3, min_constrained_degree=8)
        perts = [CrashNodes(fraction=0.05, at_round=1), IIDMessageDrop(p=0.05)]
        bound = bind_all(perts, engine.network, fault_seed=23, fault_mode="mask")
        faults = DenseFaults(engine, bound)
        batch = uniform_splitting_batched(engine, spec, SEEDS, faults=faults)
        for t, s in enumerate(SEEDS):
            seq, attempts = self.sequential_las_vegas(engine, spec, s, 64, faults)
            assert bool(batch.ok[t]) == seq.ok
            assert int(batch.attempts[t]) == attempts
            assert np.array_equal(batch.colors[t], seq.colors)
            assert np.array_equal(batch.crashed[t], seq.crashed)


class TestKeyedCoinTable:
    """The keyed kind is a pure function of (seed, counter, tag)."""

    def test_purity_and_order_insensitivity(self):
        table = CoinTable(42, range(10), kind="keyed")
        idx = np.array([3, 1, 4], dtype=np.int64)
        a = table.uniforms(idx, tag=5)
        b = table.uniforms(idx, tag=5)
        assert np.array_equal(a, b)  # drawing twice changes nothing
        # per-element values don't depend on which call draws them
        single = table.uniforms(np.array([1], dtype=np.int64), tag=5)
        assert a[1] == single[0]

    def test_tag_and_seed_dependence(self):
        idx = np.arange(32, dtype=np.int64)
        t42 = CoinTable(42, range(32), kind="keyed")
        assert not np.array_equal(t42.uniforms(idx, tag=1), t42.uniforms(idx, tag=2))
        t43 = CoinTable(43, range(32), kind="keyed")
        assert not np.array_equal(t42.uniforms(idx, tag=1), t43.uniforms(idx, tag=1))

    def test_values_are_uniform_range(self):
        table = CoinTable(7, range(1000), kind="keyed")
        u = table.uniforms(np.arange(1000, dtype=np.int64), tag=1)
        assert ((u >= 0) & (u < 1)).all()
        assert 0.4 < u.mean() < 0.6

    def test_randints_respect_bounds(self):
        table = CoinTable(7, range(100), kind="keyed")
        bounds = np.arange(1, 101, dtype=np.int64)
        draws = table.randints(np.arange(100, dtype=np.int64), bounds, tag=3)
        assert ((draws >= 0) & (draws < bounds)).all()

    def test_uniform_runs_keyed_by_call_position(self):
        table = CoinTable(9, range(10), kind="keyed")
        counts = np.array([2, 3, 1], dtype=np.int64)
        full = table.uniform_runs(np.array([0, 1, 2]), counts, tag=1)
        assert full.shape[0] == 6
        again = table.uniform_runs(np.array([0, 1, 2]), counts, tag=1)
        assert np.array_equal(full, again)

    def test_philox_and_replay_ignore_tag(self):
        idx = np.arange(8, dtype=np.int64)
        for kind in ("philox", "replay"):
            a = CoinTable(1, range(8), kind=kind).uniforms(idx, tag=1)
            b = CoinTable(1, range(8), kind=kind).uniforms(idx, tag=9)
            assert np.array_equal(a, b)
