"""Tests for the synchronous LOCAL simulator."""

from typing import Dict

import pytest

from repro.bipartite import BipartiteInstance
from repro.local import LocalAlgorithm, Network, NodeView, run_local
from tests.conftest import cycle_graph, path_graph


class Flood(LocalAlgorithm):
    """Each node learns the minimum uid in its component (classic flooding)."""

    def init(self, view: NodeView) -> None:
        view.state["best"] = view.uid

    def send(self, view: NodeView, round_no: int) -> Dict[int, int]:
        return {p: view.state["best"] for p in range(view.degree)}

    def receive(self, view: NodeView, round_no: int, inbox: Dict[int, int]) -> None:
        incoming = min(inbox.values(), default=view.state["best"])
        view.state["best"] = min(view.state["best"], incoming)
        view.output = view.state["best"]


class HaltAfter(LocalAlgorithm):
    def __init__(self, rounds: int):
        self.rounds = rounds

    def init(self, view: NodeView) -> None:
        pass

    def send(self, view: NodeView, round_no: int) -> Dict[int, int]:
        return {}

    def receive(self, view: NodeView, round_no: int, inbox) -> None:
        if round_no >= self.rounds:
            view.halted = True
            view.output = round_no


class EchoPorts(LocalAlgorithm):
    """Sends its uid on every port; records the uid seen per port."""

    def init(self, view: NodeView) -> None:
        view.state["seen"] = {}

    def send(self, view: NodeView, round_no: int) -> Dict[int, int]:
        return {p: view.uid for p in range(view.degree)}

    def receive(self, view: NodeView, round_no: int, inbox) -> None:
        view.state["seen"] = dict(inbox)
        view.output = dict(inbox)
        view.halted = True


class TestNetwork:
    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            Network([[1], []])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Network([[5]])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            Network(path_graph(3), ids=[1, 1, 2])

    def test_degree(self):
        net = Network(path_graph(3))
        assert [net.degree(i) for i in range(3)] == [1, 2, 1]

    def test_from_bipartite(self):
        inst = BipartiteInstance(2, 2, [(0, 0), (1, 1), (0, 1)])
        net = Network.from_bipartite(inst)
        assert net.n == 4
        assert net.degree(0) == 2  # left node 0 has two edges

    def test_multi_edge_ports(self):
        net = Network([[1, 1], [0, 0]])
        assert net.degree(0) == 2


class TestRunLocal:
    def test_flood_converges_to_min_id(self):
        net = Network(path_graph(5), ids=[40, 30, 20, 10, 50])
        result = run_local(net, Flood(), max_rounds=10)
        assert all(v.output == 10 for v in result.views)

    def test_information_travels_one_hop_per_round(self):
        # After r rounds, a node knows only uids within distance r.
        net = Network(path_graph(5), ids=[0, 10, 20, 30, 40])
        result = run_local(net, Flood(), max_rounds=2)
        # node 4 (uid 40) is 4 hops from uid 0; after 2 rounds it knows 20.
        assert result.views[4].output == 20

    def test_halting_stops_early(self):
        net = Network(cycle_graph(4))
        result = run_local(net, HaltAfter(3), max_rounds=100)
        assert result.rounds == 3 and result.completed

    def test_round_cap_reported(self):
        net = Network(cycle_graph(4))
        result = run_local(net, HaltAfter(50), max_rounds=5)
        assert result.rounds == 5 and not result.completed

    def test_port_reciprocity(self):
        net = Network(path_graph(3), ids=[100, 200, 300])
        result = run_local(net, EchoPorts(), max_rounds=2)
        # middle node hears both neighbors, one per port
        assert sorted(result.views[1].output.values()) == [100, 300]

    def test_multi_edge_message_delivery(self):
        net = Network([[1, 1], [0, 0]], ids=[7, 8])
        result = run_local(net, EchoPorts(), max_rounds=2)
        assert list(result.views[0].output.values()) == [8, 8]

    def test_private_rng_deterministic(self):
        class CoinOnce(LocalAlgorithm):
            def init(self, view):
                view.output = view.rng.random()
                view.halted = True

            def send(self, view, r):
                return {}

            def receive(self, view, r, inbox):
                pass

        net = Network(path_graph(3))
        a = run_local(net, CoinOnce(), seed=5).outputs()
        b = run_local(net, CoinOnce(), seed=5).outputs()
        c = run_local(net, CoinOnce(), seed=6).outputs()
        assert a == b and a != c

    def test_outputs_helper(self):
        net = Network(path_graph(2))
        result = run_local(net, HaltAfter(1), max_rounds=3)
        assert result.outputs() == [1, 1]

    def test_zero_max_rounds(self):
        net = Network(path_graph(2))
        result = run_local(net, Flood(), max_rounds=0)
        assert result.rounds == 0
        # init ran (state populated) but no round was executed
        assert all(v.state["best"] == v.uid for v in result.views)
        assert not result.completed

    def test_negative_max_rounds_rejected(self):
        net = Network(path_graph(2))
        with pytest.raises(ValueError):
            run_local(net, Flood(), max_rounds=-1)


class PortTagger(LocalAlgorithm):
    """Sends its own port number on each port; records what arrives where."""

    def init(self, view):
        pass

    def send(self, view, round_no):
        return {p: (view.index, p) for p in range(view.degree)}

    def receive(self, view, round_no, inbox):
        view.output = dict(inbox)
        view.halted = True


class HaltsThenListens(LocalAlgorithm):
    """Halts immediately in round 1 and records any later receive calls."""

    def init(self, view):
        view.state["receives"] = 0

    def send(self, view, round_no):
        return {p: "ping" for p in range(view.degree)}

    def receive(self, view, round_no, inbox):
        view.state["receives"] += 1
        if view.uid == 0:
            view.halted = True
            view.output = "halted-early"


class TestEdgeSemantics:
    """The fine print of the delivery contract, pinned for the engine too."""

    def test_multi_edge_port_matching_order(self):
        # Node 0 lists node 1 twice; the k-th copy on each side must pair.
        net = Network([[1, 1], [0, 0]])
        result = run_local(net, PortTagger(), max_rounds=1)
        # node 0's port p carries (1, p): first copy <-> first copy, etc.
        assert result.views[0].output == {0: (1, 0), 1: (1, 1)}
        assert result.views[1].output == {0: (0, 0), 1: (0, 1)}

    def test_multi_edge_matching_is_positional_not_sorted(self):
        # Three parallel edges plus a spur; positions must line up pairwise.
        net = Network([[1, 1, 2], [0, 0, 2], [0, 1]])
        result = run_local(net, PortTagger(), max_rounds=1)
        assert result.views[0].output == {0: (1, 0), 1: (1, 1), 2: (2, 0)}
        assert result.views[1].output == {0: (0, 0), 1: (0, 1), 2: (2, 1)}
        assert result.views[2].output == {0: (0, 2), 1: (1, 2)}

    def test_halted_node_inbox_suppressed(self):
        # Node 0 halts in round 1; neighbors keep sending to it, but its
        # receive hook must never fire again.
        net = Network(path_graph(3), ids=[0, 1, 2])
        result = run_local(net, HaltsThenListens(), max_rounds=4)
        assert result.views[0].output == "halted-early"
        assert result.views[0].state["receives"] == 1
        # the still-active nodes kept receiving every round
        assert result.views[1].state["receives"] == 4

    def test_send_not_called_for_halted_nodes(self):
        calls = []

        class RecordingSender(LocalAlgorithm):
            def init(self, view):
                if view.uid == 0:
                    view.halted = True

            def send(self, view, round_no):
                calls.append((view.uid, round_no))
                return {}

            def receive(self, view, round_no, inbox):
                if round_no >= 2:
                    view.halted = True

        net = Network(path_graph(3))
        run_local(net, RecordingSender(), max_rounds=5)
        assert all(uid != 0 for uid, _ in calls)
