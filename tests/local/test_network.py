"""Tests for the synchronous LOCAL simulator."""

from typing import Dict

import pytest

from repro.bipartite import BipartiteInstance
from repro.local import LocalAlgorithm, Network, NodeView, run_local
from tests.conftest import cycle_graph, path_graph


class Flood(LocalAlgorithm):
    """Each node learns the minimum uid in its component (classic flooding)."""

    def init(self, view: NodeView) -> None:
        view.state["best"] = view.uid

    def send(self, view: NodeView, round_no: int) -> Dict[int, int]:
        return {p: view.state["best"] for p in range(view.degree)}

    def receive(self, view: NodeView, round_no: int, inbox: Dict[int, int]) -> None:
        incoming = min(inbox.values(), default=view.state["best"])
        view.state["best"] = min(view.state["best"], incoming)
        view.output = view.state["best"]


class HaltAfter(LocalAlgorithm):
    def __init__(self, rounds: int):
        self.rounds = rounds

    def init(self, view: NodeView) -> None:
        pass

    def send(self, view: NodeView, round_no: int) -> Dict[int, int]:
        return {}

    def receive(self, view: NodeView, round_no: int, inbox) -> None:
        if round_no >= self.rounds:
            view.halted = True
            view.output = round_no


class EchoPorts(LocalAlgorithm):
    """Sends its uid on every port; records the uid seen per port."""

    def init(self, view: NodeView) -> None:
        view.state["seen"] = {}

    def send(self, view: NodeView, round_no: int) -> Dict[int, int]:
        return {p: view.uid for p in range(view.degree)}

    def receive(self, view: NodeView, round_no: int, inbox) -> None:
        view.state["seen"] = dict(inbox)
        view.output = dict(inbox)
        view.halted = True


class TestNetwork:
    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            Network([[1], []])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Network([[5]])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            Network(path_graph(3), ids=[1, 1, 2])

    def test_degree(self):
        net = Network(path_graph(3))
        assert [net.degree(i) for i in range(3)] == [1, 2, 1]

    def test_from_bipartite(self):
        inst = BipartiteInstance(2, 2, [(0, 0), (1, 1), (0, 1)])
        net = Network.from_bipartite(inst)
        assert net.n == 4
        assert net.degree(0) == 2  # left node 0 has two edges

    def test_multi_edge_ports(self):
        net = Network([[1, 1], [0, 0]])
        assert net.degree(0) == 2


class TestRunLocal:
    def test_flood_converges_to_min_id(self):
        net = Network(path_graph(5), ids=[40, 30, 20, 10, 50])
        result = run_local(net, Flood(), max_rounds=10)
        assert all(v.output == 10 for v in result.views)

    def test_information_travels_one_hop_per_round(self):
        # After r rounds, a node knows only uids within distance r.
        net = Network(path_graph(5), ids=[0, 10, 20, 30, 40])
        result = run_local(net, Flood(), max_rounds=2)
        # node 4 (uid 40) is 4 hops from uid 0; after 2 rounds it knows 20.
        assert result.views[4].output == 20

    def test_halting_stops_early(self):
        net = Network(cycle_graph(4))
        result = run_local(net, HaltAfter(3), max_rounds=100)
        assert result.rounds == 3 and result.completed

    def test_round_cap_reported(self):
        net = Network(cycle_graph(4))
        result = run_local(net, HaltAfter(50), max_rounds=5)
        assert result.rounds == 5 and not result.completed

    def test_port_reciprocity(self):
        net = Network(path_graph(3), ids=[100, 200, 300])
        result = run_local(net, EchoPorts(), max_rounds=2)
        # middle node hears both neighbors, one per port
        assert sorted(result.views[1].output.values()) == [100, 300]

    def test_multi_edge_message_delivery(self):
        net = Network([[1, 1], [0, 0]], ids=[7, 8])
        result = run_local(net, EchoPorts(), max_rounds=2)
        assert list(result.views[0].output.values()) == [8, 8]

    def test_private_rng_deterministic(self):
        class CoinOnce(LocalAlgorithm):
            def init(self, view):
                view.output = view.rng.random()
                view.halted = True

            def send(self, view, r):
                return {}

            def receive(self, view, r, inbox):
                pass

        net = Network(path_graph(3))
        a = run_local(net, CoinOnce(), seed=5).outputs()
        b = run_local(net, CoinOnce(), seed=5).outputs()
        c = run_local(net, CoinOnce(), seed=6).outputs()
        assert a == b and a != c

    def test_outputs_helper(self):
        net = Network(path_graph(2))
        result = run_local(net, HaltAfter(1), max_rounds=3)
        assert result.outputs() == [1, 1]

    def test_zero_max_rounds(self):
        net = Network(path_graph(2))
        result = run_local(net, Flood(), max_rounds=0)
        assert result.rounds == 0
