"""Dense-backend tests: replay bit-identity and philox statistical validity.

Two contracts from ``repro/local/dense.py``:

* with ``coins="replay"`` every dense kernel is **bit-identical** to the
  CSR engine (itself bit-identical to ``run_local``) — same outputs and
  round counts for any graph and seed; property-tested here on random
  graphs at n <= 200 across seeds;
* with ``coins="philox"`` runs are **distribution-identical**: every
  output must satisfy the algorithm's validity predicate (independence +
  maximality, sinklessness, splitting discrepancy bounds), checked across
  many seeds.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.apps.splitting import uniform_splitting  # noqa: E402
from repro.bipartite.generators import (  # noqa: E402
    configuration_model_regular,
    grid_graph,
    random_sparse_graph,
)
from repro.core.problems import UniformSplittingSpec  # noqa: E402
from repro.core.verifiers import uniform_splitting_violations  # noqa: E402
from repro.local import CSREngine, Network, run_local  # noqa: E402
from repro.local.dense import (  # noqa: E402
    dense_orientation,
    luby_mis_dense,
    sinkless_trial_dense,
    uniform_splitting_dense,
)
from repro.mis.luby import LubyMIS, is_mis, luby_mis  # noqa: E402
from repro.orientation.sinkless import is_sinkless, run_trial_and_fix  # noqa: E402


def engine_mis(engine, seed, max_rounds=10_000):
    result = engine.run(LubyMIS(), max_rounds=max_rounds, seed=seed)
    return [bool(v.state.get("in_mis")) for v in result.views], result.rounds, result.completed


class TestLubyReplayBitIdentity:
    """dense(replay) == engine == run_local, property-tested at n <= 200."""

    def test_random_sparse_graphs(self):
        for trial in range(8):
            rng = random.Random(trial)
            n = rng.randint(2, 200)
            adj = random_sparse_graph(n, min(n - 1, rng.uniform(0.5, 8)), seed=trial)
            net = Network(adj)
            engine = CSREngine(net)
            for seed in (0, 1, 7):
                mis, rounds, completed = engine_mis(engine, seed)
                dense = luby_mis_dense(engine, seed=seed, coins="replay")
                assert dense.rounds == rounds
                assert dense.completed == completed
                assert [bool(x) for x in dense.in_mis] == mis
                # ... and the engine agrees with the reference simulator.
                ref = run_local(net, LubyMIS(), seed=seed)
                assert ref.rounds == rounds
                assert [bool(v.state.get("in_mis")) for v in ref.views] == mis

    def test_structured_topologies_and_shuffled_ids(self):
        nets = [
            Network(configuration_model_regular(60, 4, seed=2)),
            Network(grid_graph(7, 8, periodic=True)),
            Network(random_sparse_graph(50, 3, seed=9), ids=[1000 - i for i in range(50)]),
        ]
        for net in nets:
            engine = CSREngine(net)
            for seed in (3, 11):
                mis, rounds, _ = engine_mis(engine, seed)
                dense = luby_mis_dense(engine, seed=seed, coins="replay")
                assert dense.rounds == rounds
                assert [bool(x) for x in dense.in_mis] == mis

    def test_multi_edges_supported(self):
        # Parallel edges just duplicate priority comparisons; outputs match.
        adj = [[1, 1, 2], [0, 0, 2], [0, 1]]
        engine = CSREngine(Network(adj))
        for seed in (0, 5):
            mis, rounds, _ = engine_mis(engine, seed)
            dense = luby_mis_dense(engine, seed=seed, coins="replay")
            assert dense.rounds == rounds and [bool(x) for x in dense.in_mis] == mis

    def test_edgeless_and_tiny_graphs(self):
        for adj in ([], [[]], [[], []], [[1], [0]]):
            engine = CSREngine(Network(adj))
            mis, rounds, completed = engine_mis(engine, 0)
            dense = luby_mis_dense(engine, seed=0, coins="replay")
            assert dense.rounds == rounds and dense.completed == completed
            assert [bool(x) for x in dense.in_mis] == mis

    def test_trailing_isolated_nodes(self):
        # Regression: trailing empty CSR segments have reduceat start == m;
        # a clipped start silently dropped the last slot of the final
        # non-empty segment, corrupting every neighborhood reduction.
        graphs = [
            [[1, 2], [0, 2], [0, 1], []],  # triangle + trailing isolated node
            [[1], [0], [], []],
            [[], [2], [1], [], []],  # interior + trailing empties
        ]
        for adj in graphs:
            engine = CSREngine(Network(adj))
            for seed in (0, 1, 2, 5):
                mis, rounds, completed = engine_mis(engine, seed)
                dense = luby_mis_dense(engine, seed=seed, coins="replay")
                assert [bool(x) for x in dense.in_mis] == mis, (adj, seed)
                assert dense.rounds == rounds and dense.completed == completed
                assert is_mis(adj, {int(i) for i in dense.in_mis.nonzero()[0]})

    def test_round_cap_matches_engine(self):
        adj = random_sparse_graph(40, 4, seed=3)
        engine = CSREngine(Network(adj))
        for cap in (0, 1, 2, 3):
            mis, rounds, completed = engine_mis(engine, 1, max_rounds=cap)
            dense = luby_mis_dense(engine, seed=1, coins="replay", max_rounds=cap)
            assert dense.rounds == rounds
            assert dense.completed == completed

    def test_method_dense_through_luby_mis(self):
        adj = random_sparse_graph(80, 5, seed=4)
        for seed in (0, 2):
            assert luby_mis(adj, seed=seed) == luby_mis(
                adj, seed=seed, method="dense", coins="replay"
            )


class TestSinklessReplayBitIdentity:
    def test_regular_graphs(self):
        for trial in range(4):
            adj = configuration_model_regular(50, 4, seed=trial)
            engine = CSREngine(Network(adj))
            for seed in (0, 3):
                orientation, rounds = run_trial_and_fix(adj, min_degree=2, seed=seed)
                dense = sinkless_trial_dense(engine, min_degree=2, seed=seed, coins="replay")
                assert dense.rounds == rounds
                assert dense_orientation(engine, dense.out) == orientation

    def test_torus_and_sparse(self):
        graphs = [
            grid_graph(6, 7, periodic=True),
            random_sparse_graph(60, 5, seed=8),
        ]
        for adj in graphs:
            engine = CSREngine(Network(adj))
            for seed in (1, 4):
                orientation, rounds = run_trial_and_fix(adj, min_degree=1, seed=seed)
                dense = sinkless_trial_dense(engine, min_degree=1, seed=seed, coins="replay")
                assert dense.rounds == rounds
                assert dense_orientation(engine, dense.out) == orientation

    def test_method_dense_through_driver(self):
        adj = configuration_model_regular(40, 4, seed=5)
        for seed in (0, 2):
            assert run_trial_and_fix(adj, min_degree=2, seed=seed) == run_trial_and_fix(
                adj, min_degree=2, seed=seed, method="dense", coins="replay"
            )

    def test_multi_edge_rejected(self):
        engine = CSREngine(Network([[1, 1], [0, 0]]))
        with pytest.raises(ValueError):
            sinkless_trial_dense(engine, seed=0)

    def test_trailing_isolated_nodes(self):
        # Regression companion to the Luby case: the sink checks (own-view
        # and probe) must survive trailing empty CSR segments.
        adj = [[1, 2], [0, 2], [0, 1], []]
        engine = CSREngine(Network(adj))
        for seed in (0, 1, 3):
            orientation, rounds = run_trial_and_fix(adj, min_degree=2, seed=seed)
            dense = sinkless_trial_dense(engine, min_degree=2, seed=seed, coins="replay")
            assert dense.rounds == rounds
            assert dense_orientation(engine, dense.out) == orientation

    def test_round_cap_raises_like_driver(self):
        # A single cycle with min_degree=2: solvable, but cap it at round 1.
        adj = [[1, 2], [0, 2], [0, 1]]
        engine = CSREngine(Network(adj))
        with pytest.raises(RuntimeError):
            sinkless_trial_dense(engine, min_degree=2, seed=0, max_rounds=1)


class TestSplittingReplayBitIdentity:
    def test_partition_matches_local_method(self):
        adj = random_sparse_graph(200, 40.0, seed=3)
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=15)
        for seed in (0, 1, 5):
            local = uniform_splitting(adj, spec, method="local", seed=seed)
            dense = uniform_splitting(adj, spec, method="dense", seed=seed, coins="replay")
            assert local == dense

    def test_trailing_isolated_nodes(self):
        # Regression: red-neighbor segment sums with trailing empty segments.
        from repro.apps.splitting import ZeroRoundSplitting

        adj = [[1, 2], [0, 2], [0, 1], [], []]
        engine = CSREngine(Network(adj))
        spec = UniformSplittingSpec(eps=0.45, min_constrained_degree=2)
        for run_seed in range(6):
            result = engine.run(ZeroRoundSplitting(spec), max_rounds=1, seed=run_seed)
            dense = uniform_splitting_dense(engine, spec, seed=run_seed, coins="replay")
            assert [int(c) for c in dense.colors] == [c for c, _ in result.outputs()]
            assert dense.ok == all(ok for _, ok in result.outputs())

    def test_single_attempt_matches_zero_round_algorithm(self):
        from repro.apps.splitting import ZeroRoundSplitting

        adj = random_sparse_graph(120, 30.0, seed=5)
        engine = CSREngine(Network(adj))
        spec = UniformSplittingSpec(eps=0.3, min_constrained_degree=10)
        for run_seed in (0, 1, 2, 99):
            result = engine.run(ZeroRoundSplitting(spec), max_rounds=1, seed=run_seed)
            dense = uniform_splitting_dense(engine, spec, seed=run_seed, coins="replay")
            assert [int(c) for c in dense.colors] == [c for c, _ in result.outputs()]
            assert dense.ok == all(ok for _, ok in result.outputs())
            assert dense.rounds == result.rounds == 1


class TestPhiloxStatisticalValidity:
    """Counter-based coins: outputs must satisfy the validity predicates."""

    def test_mis_independence_and_maximality(self):
        for trial in range(3):
            adj = random_sparse_graph(300, 6, seed=trial)
            engine = CSREngine(Network(adj))
            for seed in range(8):
                dense = luby_mis_dense(engine, seed=seed, coins="philox")
                assert dense.completed
                assert is_mis(adj, {int(i) for i in dense.in_mis.nonzero()[0]})

    def test_sinklessness_on_min_degree_3(self):
        for trial in range(3):
            adj = configuration_model_regular(120, 3, seed=trial)
            engine = CSREngine(Network(adj))
            for seed in range(6):
                dense = sinkless_trial_dense(engine, min_degree=3, seed=seed, coins="philox")
                orientation = dense_orientation(engine, dense.out)
                assert is_sinkless(adj, orientation, min_degree=3)
                assert dense.rounds >= 2

    def test_splitting_discrepancy_over_50_seeds(self):
        adj = random_sparse_graph(300, 48.0, seed=7)
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=24)
        engine = CSREngine(Network(adj))
        n = len(adj)
        red_fractions = []
        for seed in range(50):
            partition = uniform_splitting(
                adj, spec, method="dense", seed=seed, coins="philox", engine=engine
            )
            assert not uniform_splitting_violations(adj, partition, spec)
            red_fractions.append(partition.count(0) / n)
        # Global red mass concentrates around 1/2 across accepted runs.
        mean = sum(red_fractions) / len(red_fractions)
        assert abs(mean - 0.5) < 0.05
        assert min(red_fractions) > 0.35 and max(red_fractions) < 0.65

    def test_philox_luby_rounds_logarithmic(self):
        # O(log n) w.h.p.: generous cap, but it must not blow up.
        adj = random_sparse_graph(2000, 10, seed=1)
        engine = CSREngine(Network(adj))
        dense = luby_mis_dense(engine, seed=0, coins="philox")
        assert dense.completed and dense.rounds <= 40


class TestDenseArraysOnEngine:
    def test_cached_and_consistent_with_python_lists(self):
        adj = [[1, 1, 2], [0, 0, 2], [0, 1]]
        engine = CSREngine(Network(adj))
        offsets, dst_node, dst_port = engine.dense_arrays()
        assert engine.dense_arrays()[0] is offsets  # cached
        assert list(offsets) == engine.offsets
        assert list(dst_node) == engine.dst_node
        assert list(dst_port) == engine.dst_port
        assert offsets.dtype == dst_node.dtype == dst_port.dtype == np.int64

    def test_lazy_exports_resolve(self):
        import repro.local as local

        assert local.luby_mis_dense is luby_mis_dense
        with pytest.raises(AttributeError):
            local.not_a_kernel
