"""RoundHooks behaviour on both executors.

The hook API is the substrate of the scenario subsystem: crashes in
``before_round``, message drops in ``deliver``, observation in
``after_round`` — with identical call points in :func:`run_local` and the
batched engine.  These tests pin the call-point semantics directly (the
perturbation-level equivalence lives in ``tests/scenarios/``).
"""

import pytest

from repro.local import (
    CSREngine,
    LocalAlgorithm,
    Network,
    RoundHooks,
    run_local,
    run_local_fast,
)
from tests.conftest import cycle_graph


class Flood(LocalAlgorithm):
    """Min-uid flooding for a fixed number of rounds."""

    def __init__(self, rounds=3):
        self.rounds = rounds

    def init(self, view):
        view.state["best"] = view.uid

    def send(self, view, round_no):
        return {p: view.state["best"] for p in range(view.degree)}

    def receive(self, view, round_no, inbox):
        incoming = min(inbox.values(), default=view.state["best"])
        view.state["best"] = min(view.state["best"], incoming)
        if round_no >= self.rounds:
            view.output = view.state["best"]
            view.halted = True


class CrashAt(RoundHooks):
    def __init__(self, victims, at_round):
        self.victims = victims
        self.at_round = at_round

    def before_round(self, round_no, views):
        if round_no == self.at_round:
            for i in self.victims:
                views[i].halted = True
                views[i].state["crashed"] = True


class DropFrom(RoundHooks):
    """Drop every message a given sender emits (pure in (round, sender, port))."""

    def __init__(self, senders):
        self.senders = frozenset(senders)

    def deliver(self, round_no, sender, port):
        return sender not in self.senders


class Recorder(RoundHooks):
    def __init__(self):
        self.before = []
        self.after = []

    def before_round(self, round_no, views):
        self.before.append(round_no)

    def after_round(self, round_no, views):
        self.after.append(round_no)


@pytest.mark.parametrize("runner", [run_local, run_local_fast])
class TestHookSemantics:
    def test_crashed_node_stops_participating(self, runner):
        net = Network(cycle_graph(6))
        # Node 0 holds the minimum uid; crashing it before round 1 means its
        # uid never propagates.
        result = runner(net, Flood(rounds=3), max_rounds=10, seed=0,
                        hooks=CrashAt([0], at_round=1))
        assert result.views[0].output is None
        assert result.views[0].state["crashed"]
        assert all(v.output is not None for v in result.views[1:])
        assert 0 not in [v.output for v in result.views[1:]]
        # Survivors all halted, so the run still completes.
        assert result.completed

    def test_crash_after_propagation_keeps_value(self, runner):
        net = Network(cycle_graph(6))
        # One round is enough for uid 0 to reach its two neighbors; from
        # there the survivors spread it among themselves within 3 rounds.
        result = runner(net, Flood(rounds=3), max_rounds=10, seed=0,
                        hooks=CrashAt([0], at_round=2))
        assert [v.output for v in result.views[1:]] == [0, 0, 0, 0, 0]

    def test_dropped_messages_never_arrive(self, runner):
        net = Network(cycle_graph(5))
        result = runner(net, Flood(rounds=4), max_rounds=10, seed=0,
                        hooks=DropFrom([0]))
        # Node 0 is silenced: nobody ever hears uid 0, but node 0 itself
        # keeps receiving and halts normally.
        assert result.completed
        assert result.views[0].output == 0
        assert 0 not in [v.output for v in result.views[1:]]

    def test_before_and_after_called_per_executed_round(self, runner):
        net = Network(cycle_graph(4))
        hooks = Recorder()
        result = runner(net, Flood(rounds=3), max_rounds=10, seed=0, hooks=hooks)
        assert hooks.before == list(range(1, result.rounds + 1))
        assert hooks.after == hooks.before

    def test_crashing_everyone_counts_the_empty_round(self, runner):
        net = Network(cycle_graph(4))
        result = runner(net, Flood(rounds=5), max_rounds=10, seed=0,
                        hooks=CrashAt(range(4), at_round=2))
        # Round 2 executes as an empty round (reference semantics), then the
        # run stops: everyone is halted, nobody produced output.
        assert result.rounds == 2
        assert result.completed
        assert all(v.output is None for v in result.views)


def test_hooked_runs_bit_identical_across_executors():
    net = Network(cycle_graph(9))
    for hooks_factory in (
        lambda: CrashAt([2, 5], at_round=2),
        lambda: DropFrom([1, 4]),
        lambda: Recorder(),
    ):
        ref = run_local(net, Flood(rounds=4), max_rounds=20, seed=3, hooks=hooks_factory())
        fast = run_local_fast(net, Flood(rounds=4), max_rounds=20, seed=3,
                              hooks=hooks_factory())
        assert ref.rounds == fast.rounds
        assert ref.completed == fast.completed
        assert ref.outputs() == fast.outputs()
        assert [v.state for v in ref.views] == [v.state for v in fast.views]


def test_hooks_compose_with_probe():
    net = Network(cycle_graph(8))
    seen = []

    def probe(round_no, views):
        seen.append(round_no)
        return False

    result = CSREngine(net).run(Flood(rounds=3), max_rounds=10, seed=0,
                                probe=probe, hooks=DropFrom([0]))
    assert result.completed
    # The probe fires between rounds while any node is still active.
    assert seen == list(range(1, result.rounds))
