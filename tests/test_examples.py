"""Smoke-run every script in examples/.

The examples import the public API and are the first thing a reader runs;
without coverage they rot silently when an export moves.  Each script must
exit 0 and print something.  Total budget is a few seconds per script
(``coloring_pipeline`` is the slowest at ~6s on one CPU); a hang is cut off
by the per-script timeout.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script.name} printed nothing"
