"""The exact certification oracle: differential tests against the contract
checkers, sanity anchors for the existence oracles, and the tier-1 property
suite certifying every registered scenario on every backend.

The exact checkers were written against the contract *definitions* on a
different substrate (bitmask integers, Fraction bounds), so random
differential agreement with :mod:`repro.scenarios.contracts` is evidence
both are right — a shared bug would have to be implemented twice,
independently, the same way.
"""

import random
from fractions import Fraction

import pytest

from repro.core.problems import UniformSplittingSpec
from repro.scenarios import all_scenarios
from repro.scenarios.contracts import (
    mis_violations,
    splitting_violations,
    surviving_sinks,
)
from repro.verify import (
    CERTIFY_MAX_NODES,
    certify_all,
    certify_scenario,
    exact_mis_violations,
    exact_splitting_violations,
    exact_surviving_sinks,
    min_splitting_violations,
    sinkless_feasible,
)


def random_instance(seed, n=20, edges=50, multi=False):
    rng = random.Random(seed)
    adj = [[] for _ in range(n)]
    for _ in range(edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and (multi or v not in adj[u]):
            adj[u].append(v)
            adj[v].append(u)
    alive = [rng.random() > 0.2 for _ in range(n)]
    return rng, adj, alive


def one_sided_edge_ok(seed):
    rng = random.Random(seed)
    dropped = {(i, p) for i in range(64) for p in range(64) if rng.random() < 0.2}
    return lambda i, p: (i, p) not in dropped


class TestDifferentialAgreement:
    """exact checkers == contract checkers on random instances."""

    @pytest.mark.parametrize("multi", [False, True], ids=["simple", "multigraph"])
    def test_mis(self, multi):
        for seed in range(25):
            rng, adj, alive = random_instance(seed, multi=multi)
            mis = {i for i in range(len(adj)) if rng.random() < 0.3}
            edge_ok = one_sided_edge_ok(seed) if seed % 2 else None
            assert exact_mis_violations(adj, mis, alive, edge_ok) == \
                mis_violations(adj, mis, alive, edge_ok), seed

    def test_sinks(self):
        for seed in range(25):
            rng, adj, alive = random_instance(seed)
            orientation = {}
            for i in range(len(adj)):
                for j in adj[i]:
                    if i < j:
                        orientation[(i, j) if rng.random() < 0.6 else (j, i)] = True
            for min_degree in (1, 2, 3):
                assert exact_surviving_sinks(adj, orientation, alive, min_degree) \
                    == surviving_sinks(adj, orientation, alive, min_degree), seed

    @pytest.mark.parametrize("multi", [False, True], ids=["simple", "multigraph"])
    def test_splitting(self, multi):
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=3)
        for seed in range(25):
            rng, adj, alive = random_instance(seed, multi=multi)
            partition = [rng.randrange(2) for _ in adj]
            edge_ok = one_sided_edge_ok(seed) if seed % 2 else None
            assert exact_splitting_violations(adj, partition, spec, alive, edge_ok) \
                == splitting_violations(adj, partition, spec, alive, edge_ok), seed

    def test_planted_violations_are_found(self):
        path = [[1], [0, 2], [1]]
        assert exact_mis_violations(path, {0, 1}) == (1, 0)  # adjacent MIS pair
        assert exact_mis_violations(path, {0}) == (0, 1)  # node 2 undominated
        assert exact_mis_violations(path, {1}) == (0, 0)
        orientation = {(0, 1): True, (2, 1): True}
        assert exact_surviving_sinks(path, orientation, [True] * 3) == [1]

    def test_size_gate(self):
        big = [[] for _ in range(CERTIFY_MAX_NODES + 1)]
        with pytest.raises(ValueError, match="capped"):
            exact_mis_violations(big, set())


class TestExistenceOracles:
    def test_single_edge_is_infeasible(self):
        # Two accountable endpoints, one edge: someone must be a sink.
        assert not sinkless_feasible([[1], [0]], min_degree=1)

    def test_cycle_is_feasible(self):
        cycle = [[1, 3], [0, 2], [1, 3], [2, 0]]
        assert sinkless_feasible(cycle, min_degree=2)

    def test_star_feasibility_depends_on_accountability(self):
        star = [[1, 2, 3], [0], [0], [0]]
        # Leaves accountable at min_degree=1: three leaves need three
        # distinct outgoing edges and the center needs one more.
        assert not sinkless_feasible(star, min_degree=1)
        # min_degree=2 leaves only the center accountable.
        assert sinkless_feasible(star, min_degree=2)

    def test_crashes_relax_feasibility(self):
        assert not sinkless_feasible([[1], [0]])
        assert sinkless_feasible([[1], [0]], alive=[True, False])

    def test_min_splitting_zero_on_even_cycle(self):
        cycle = [[1, 3], [0, 2], [1, 3], [2, 0]]
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=2)
        # Window at degree 2 is [0.5, 1.5]: alternating colors give every
        # node exactly one red neighbor.
        assert min_splitting_violations(cycle, spec) == 0

    def test_min_splitting_positive_when_window_is_empty(self):
        k4 = [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]]
        spec = UniformSplittingSpec(eps=0.1, min_constrained_degree=3)
        # Window at degree 3 is [1.2, 1.8] — no integer red count fits, so
        # every node violates under every coloring.
        lo, hi = Fraction(2, 5) * 3, Fraction(3, 5) * 3
        assert int(lo) < lo and int(hi) < hi  # the window really is empty
        assert min_splitting_violations(k4, spec) == 4

    def test_min_splitting_respects_free_node_cap(self):
        adj = [[] for _ in range(30)]
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=2)
        with pytest.raises(ValueError, match="capped"):
            min_splitting_violations(adj, spec, max_free=10)


class TestScenarioCertification:
    def test_report_shape(self):
        report = certify_scenario("luby/byzantine", n=48, seed=1)
        assert report["ok"] == 1 and report["mismatches"] == []
        assert report["recovered"] == 1
        assert report["violations"] == report["exact_violations"] == 0

    def test_certifies_unrecovered_runs_too(self):
        # recover=False: the oracle still certifies the recorded violation
        # counts, whatever they are.
        report = certify_scenario("luby/byzantine", n=48, seed=1, recover=False)
        assert report["ok"] == 1
        assert report["recovered"] == 0

    @pytest.mark.parametrize(
        "sc", all_scenarios(), ids=lambda s: s.name.replace("/", "-")
    )
    def test_property_suite(self, sc):
        for backend in sc.backends:
            report = certify_scenario(sc, n=48, seed=3, backend=backend)
            assert report["ok"] == 1, (sc.name, backend, report["mismatches"])

    def test_certify_all_covers_every_cell(self):
        reports = certify_all(n=48, seed=0)
        cells = sum(len(sc.backends) for sc in all_scenarios())
        assert len(reports) == cells
        assert all(r["ok"] for r in reports)
