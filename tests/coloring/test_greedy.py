"""Tests for the (d+1)-coloring baseline."""

import pytest

from repro.coloring import d_plus_one_coloring, fhk_coloring_rounds, is_proper_coloring
from repro.local import RoundLedger
from repro.bipartite.generators import random_simple_graph
from tests.conftest import complete_graph, cycle_graph


class TestDPlusOne:
    def test_proper(self):
        adj = random_simple_graph(40, 0.2, seed=1)
        colors, num = d_plus_one_coloring(adj)
        assert is_proper_coloring(adj, colors)

    def test_at_most_delta_plus_one_colors(self):
        adj = random_simple_graph(40, 0.3, seed=2)
        Delta = max(len(x) for x in adj)
        _, num = d_plus_one_coloring(adj)
        assert num <= Delta + 1

    def test_complete_graph_needs_n(self):
        adj = complete_graph(5)
        _, num = d_plus_one_coloring(adj)
        assert num == 5

    def test_rounds_charged(self):
        led = RoundLedger()
        d_plus_one_coloring(cycle_graph(10), ledger=led)
        assert led.total > 0


class TestFHKRounds:
    def test_sublinear_in_degree(self):
        assert fhk_coloring_rounds(10000, 100) < 10000

    def test_monotone_in_degree(self):
        assert fhk_coloring_rounds(100, 100) < fhk_coloring_rounds(400, 100)


class TestIsProper:
    def test_detects_conflict(self):
        assert not is_proper_coloring([[1], [0]], [0, 0])

    def test_detects_uncolored(self):
        assert not is_proper_coloring([[1], [0]], [0, None])

    def test_length_mismatch(self):
        assert not is_proper_coloring([[1], [0]], [0])
