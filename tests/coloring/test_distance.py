"""Tests for power graphs and distance colorings."""

import pytest

from repro.coloring import distance_coloring, greedy_coloring, power_graph
from repro.local import RoundLedger
from repro.slocal import verify_power_coloring
from tests.conftest import cycle_graph, path_graph


class TestPowerGraph:
    def test_square_of_path(self):
        pg = power_graph(path_graph(5), 2)
        assert pg[0] == [1, 2]
        assert pg[2] == [0, 1, 3, 4]

    def test_power_one_is_identity(self):
        adj = cycle_graph(6)
        pg = power_graph(adj, 1)
        assert all(sorted(a) == sorted(b) for a, b in zip(pg, adj))

    def test_large_power_gives_component_clique(self):
        pg = power_graph(path_graph(4), 10)
        assert all(len(x) == 3 for x in pg)

    def test_rejects_zero_power(self):
        with pytest.raises(ValueError):
            power_graph(path_graph(3), 0)


class TestGreedyColoring:
    def test_proper_and_small(self):
        adj = cycle_graph(9)
        colors = greedy_coloring(adj)
        assert max(colors) <= 2
        for v in range(9):
            for w in adj[v]:
                assert colors[v] != colors[w]

    def test_custom_order(self):
        adj = path_graph(3)
        colors = greedy_coloring(adj, order=[1, 0, 2])
        assert colors[1] == 0 and colors[0] == 1 and colors[2] == 1


class TestDistanceColoring:
    def test_proper_on_power_graph(self):
        adj = cycle_graph(11)
        colors, num = distance_coloring(adj, 2)
        assert verify_power_coloring(adj, colors, radius=2)
        assert num <= 5  # Delta(G^2)=4 -> at most 5 colors

    def test_round_charge_includes_degree_and_logstar(self):
        adj = cycle_graph(8)
        led = RoundLedger()
        distance_coloring(adj, 2, ledger=led)
        assert led.total >= 4  # Delta(G^2) = 4

    def test_radius_three(self):
        adj = path_graph(10)
        colors, _ = distance_coloring(adj, 3)
        assert verify_power_coloring(adj, colors, radius=3)
