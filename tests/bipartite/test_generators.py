"""Tests for the instance generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bipartite import (
    configuration_model_regular,
    grid_graph,
    powerlaw_bipartite,
    random_left_regular,
    random_near_regular,
    random_regular_graph,
    random_simple_graph,
    random_skewed,
    random_sparse_graph,
    regular_bipartite,
)


class TestRegularBipartite:
    def test_exact_left_degree(self):
        inst = regular_bipartite(10, 20, 4)
        assert all(inst.left_degree(u) == 4 for u in range(10))

    def test_right_degrees_balanced_when_divisible(self):
        inst = regular_bipartite(10, 20, 4)  # 40 edges over 20 right nodes
        assert all(inst.right_degree(v) == 2 for v in range(20))

    def test_simple(self):
        assert regular_bipartite(7, 11, 5).is_simple()

    def test_rejects_degree_above_right_size(self):
        with pytest.raises(ValueError):
            regular_bipartite(3, 2, 3)

    def test_zero_degree(self):
        inst = regular_bipartite(3, 3, 0)
        assert inst.n_edges == 0


class TestRandomLeftRegular:
    def test_left_degree_exact(self):
        inst = random_left_regular(20, 30, 6, seed=1)
        assert all(inst.left_degree(u) == 6 for u in range(20))

    def test_seeded_reproducibility(self):
        a = random_left_regular(10, 10, 3, seed=5)
        b = random_left_regular(10, 10, 3, seed=5)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = random_left_regular(10, 10, 3, seed=5)
        b = random_left_regular(10, 10, 3, seed=6)
        assert a.edges != b.edges

    def test_simple(self):
        assert random_left_regular(15, 15, 7, seed=2).is_simple()


class TestRandomNearRegular:
    def test_degrees_within_range(self):
        inst = random_near_regular(30, 30, 4, 8, seed=3)
        for u in range(30):
            assert 4 <= inst.left_degree(u) <= 8

    def test_delta_at_least_dmin(self):
        inst = random_near_regular(30, 30, 4, 8, seed=3)
        assert inst.delta >= 4

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            random_near_regular(5, 5, 4, 3, seed=1)


class TestRandomSkewed:
    def test_degrees_within_range(self):
        inst = random_skewed(50, 100, 3, 40, seed=4)
        for u in range(50):
            assert 3 <= inst.left_degree(u) <= 40

    def test_skew_favors_small_degrees(self):
        inst = random_skewed(300, 500, 2, 100, exponent=2.5, seed=5)
        hist = inst.degree_histogram_left()
        small = sum(c for d, c in hist.items() if d <= 10)
        assert small > 150  # most nodes stay near the minimum


class TestGraphSamplers:
    def test_gnp_symmetry(self):
        adj = random_simple_graph(30, 0.2, seed=6)
        for u in range(30):
            for v in adj[u]:
                assert u in adj[v]

    def test_gnp_extremes(self):
        assert all(not x for x in random_simple_graph(10, 0.0, seed=1))
        full = random_simple_graph(10, 1.0, seed=1)
        assert all(len(x) == 9 for x in full)

    def test_regular_graph_degrees(self):
        adj = random_regular_graph(20, 4, seed=7)
        assert all(len(x) == 4 for x in adj)

    def test_regular_graph_rejects_odd_product(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3, seed=1)

    def test_regular_graph_sorted_and_simple(self):
        adj = random_regular_graph(16, 3, seed=8)
        for u, nbrs in enumerate(adj):
            assert nbrs == sorted(nbrs)
            assert len(set(nbrs)) == len(nbrs)
            assert u not in nbrs


class TestRandomSparseGraph:
    def test_edge_count_and_simplicity(self):
        adj = random_sparse_graph(200, 6.0, seed=1)
        m = sum(len(a) for a in adj) // 2
        assert m == 600
        for u, nbrs in enumerate(adj):
            assert nbrs == sorted(nbrs)
            assert len(set(nbrs)) == len(nbrs)
            assert u not in nbrs

    def test_symmetric(self):
        adj = random_sparse_graph(100, 4.0, seed=2)
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                assert u in adj[v]

    def test_deterministic(self):
        assert random_sparse_graph(80, 3.0, seed=5) == random_sparse_graph(80, 3.0, seed=5)
        assert random_sparse_graph(80, 3.0, seed=5) != random_sparse_graph(80, 3.0, seed=6)

    def test_zero_nodes_and_degree(self):
        assert random_sparse_graph(0, 0.0, seed=1) == []
        assert random_sparse_graph(10, 0.0, seed=1) == [[] for _ in range(10)]

    def test_rejects_dense_request(self):
        with pytest.raises(ValueError):
            random_sparse_graph(10, 10.0, seed=1)


class TestGridGraph:
    def test_open_grid_degrees(self):
        adj = grid_graph(3, 4)
        assert len(adj) == 12
        degrees = sorted(len(a) for a in adj)
        # 4 corners of degree 2, 6 border nodes of degree 3, 2 interior of 4
        assert degrees == [2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 4, 4]

    def test_torus_is_4_regular(self):
        adj = grid_graph(5, 7, periodic=True)
        assert len(adj) == 35
        assert all(len(a) == 4 for a in adj)

    def test_torus_symmetric_and_simple(self):
        adj = grid_graph(4, 4, periodic=True)
        for u, nbrs in enumerate(adj):
            assert len(set(nbrs)) == len(nbrs)
            assert u not in nbrs
            for v in nbrs:
                assert u in adj[v]

    def test_torus_rejects_thin_dimensions(self):
        with pytest.raises(ValueError):
            grid_graph(2, 5, periodic=True)

    def test_single_node(self):
        assert grid_graph(1, 1) == [[]]


class TestConfigurationModel:
    def test_regular_and_simple(self):
        for d in (2, 3, 4, 8):
            n = 40 if (40 * d) % 2 == 0 else 41
            adj = configuration_model_regular(n, d, seed=d)
            assert all(len(a) == d for a in adj)
            for u, nbrs in enumerate(adj):
                assert nbrs == sorted(nbrs)
                assert len(set(nbrs)) == len(nbrs)
                assert u not in nbrs

    def test_deterministic(self):
        a = configuration_model_regular(30, 4, seed=9)
        b = configuration_model_regular(30, 4, seed=9)
        c = configuration_model_regular(30, 4, seed=10)
        assert a == b
        assert a != c

    def test_rejects_odd_product(self):
        with pytest.raises(ValueError):
            configuration_model_regular(5, 3, seed=1)

    def test_rejects_degree_ge_n(self):
        with pytest.raises(ValueError):
            configuration_model_regular(4, 4, seed=1)

    def test_large_instance(self):
        adj = configuration_model_regular(2000, 6, seed=3)
        assert all(len(a) == 6 for a in adj)


class TestPowerlawBipartite:
    def test_left_degrees_within_bounds(self):
        inst = powerlaw_bipartite(100, 80, 2, 20, seed=1)
        for u in range(100):
            assert 2 <= inst.left_degree(u) <= 20

    def test_simple_instance(self):
        inst = powerlaw_bipartite(50, 40, 1, 10, seed=2)
        assert inst.is_simple()

    def test_right_side_skews(self):
        # Preferential attachment should concentrate rank on a few hubs.
        inst = powerlaw_bipartite(300, 100, 2, 8, seed=3)
        degrees = sorted(
            (inst.right_degree(v) for v in range(100)), reverse=True
        )
        avg = sum(degrees) / len(degrees)
        assert degrees[0] > 2 * avg

    def test_deterministic(self):
        a = powerlaw_bipartite(40, 30, 1, 6, seed=4)
        b = powerlaw_bipartite(40, 30, 1, 6, seed=4)
        assert a.edges == b.edges

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            powerlaw_bipartite(10, 5, 0, 3, seed=1)
        with pytest.raises(ValueError):
            powerlaw_bipartite(10, 5, 4, 6, seed=1)
