"""Tests for the instance generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bipartite import (
    random_left_regular,
    random_near_regular,
    random_regular_graph,
    random_simple_graph,
    random_skewed,
    regular_bipartite,
)


class TestRegularBipartite:
    def test_exact_left_degree(self):
        inst = regular_bipartite(10, 20, 4)
        assert all(inst.left_degree(u) == 4 for u in range(10))

    def test_right_degrees_balanced_when_divisible(self):
        inst = regular_bipartite(10, 20, 4)  # 40 edges over 20 right nodes
        assert all(inst.right_degree(v) == 2 for v in range(20))

    def test_simple(self):
        assert regular_bipartite(7, 11, 5).is_simple()

    def test_rejects_degree_above_right_size(self):
        with pytest.raises(ValueError):
            regular_bipartite(3, 2, 3)

    def test_zero_degree(self):
        inst = regular_bipartite(3, 3, 0)
        assert inst.n_edges == 0


class TestRandomLeftRegular:
    def test_left_degree_exact(self):
        inst = random_left_regular(20, 30, 6, seed=1)
        assert all(inst.left_degree(u) == 6 for u in range(20))

    def test_seeded_reproducibility(self):
        a = random_left_regular(10, 10, 3, seed=5)
        b = random_left_regular(10, 10, 3, seed=5)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = random_left_regular(10, 10, 3, seed=5)
        b = random_left_regular(10, 10, 3, seed=6)
        assert a.edges != b.edges

    def test_simple(self):
        assert random_left_regular(15, 15, 7, seed=2).is_simple()


class TestRandomNearRegular:
    def test_degrees_within_range(self):
        inst = random_near_regular(30, 30, 4, 8, seed=3)
        for u in range(30):
            assert 4 <= inst.left_degree(u) <= 8

    def test_delta_at_least_dmin(self):
        inst = random_near_regular(30, 30, 4, 8, seed=3)
        assert inst.delta >= 4

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            random_near_regular(5, 5, 4, 3, seed=1)


class TestRandomSkewed:
    def test_degrees_within_range(self):
        inst = random_skewed(50, 100, 3, 40, seed=4)
        for u in range(50):
            assert 3 <= inst.left_degree(u) <= 40

    def test_skew_favors_small_degrees(self):
        inst = random_skewed(300, 500, 2, 100, exponent=2.5, seed=5)
        hist = inst.degree_histogram_left()
        small = sum(c for d, c in hist.items() if d <= 10)
        assert small > 150  # most nodes stay near the minimum


class TestGraphSamplers:
    def test_gnp_symmetry(self):
        adj = random_simple_graph(30, 0.2, seed=6)
        for u in range(30):
            for v in adj[u]:
                assert u in adj[v]

    def test_gnp_extremes(self):
        assert all(not x for x in random_simple_graph(10, 0.0, seed=1))
        full = random_simple_graph(10, 1.0, seed=1)
        assert all(len(x) == 9 for x in full)

    def test_regular_graph_degrees(self):
        adj = random_regular_graph(20, 4, seed=7)
        assert all(len(x) == 4 for x in adj)

    def test_regular_graph_rejects_odd_product(self):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3, seed=1)

    def test_regular_graph_sorted_and_simple(self):
        adj = random_regular_graph(16, 3, seed=8)
        for u, nbrs in enumerate(adj):
            assert nbrs == sorted(nbrs)
            assert len(set(nbrs)) == len(nbrs)
            assert u not in nbrs
