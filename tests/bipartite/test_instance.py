"""Unit and property tests for BipartiteInstance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bipartite import BLUE, RED, BipartiteInstance, regular_bipartite


def tiny():
    #  u0 - v0, v1 ;  u1 - v1, v2
    return BipartiteInstance(2, 3, [(0, 0), (0, 1), (1, 1), (1, 2)])


@st.composite
def instances(draw, max_left=8, max_right=8, max_edges=24):
    n_left = draw(st.integers(min_value=1, max_value=max_left))
    n_right = draw(st.integers(min_value=1, max_value=max_right))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n_left - 1),
        st.integers(min_value=0, max_value=n_right - 1),
    )
    edges = draw(st.lists(pairs, max_size=max_edges, unique=True))
    return BipartiteInstance(n_left, n_right, edges)


class TestConstruction:
    def test_counts(self):
        inst = tiny()
        assert inst.n_left == 2 and inst.n_right == 3 and inst.n_edges == 4
        assert inst.n == 5

    def test_rejects_out_of_range_left(self):
        with pytest.raises(ValueError):
            BipartiteInstance(1, 1, [(1, 0)])

    def test_rejects_out_of_range_right(self):
        with pytest.raises(ValueError):
            BipartiteInstance(1, 1, [(0, 1)])

    def test_rejects_parallel_edges_by_default(self):
        with pytest.raises(ValueError):
            BipartiteInstance(1, 1, [(0, 0), (0, 0)])

    def test_allows_parallel_edges_when_asked(self):
        inst = BipartiteInstance(1, 1, [(0, 0), (0, 0)], allow_multi=True)
        assert inst.left_degree(0) == 2
        assert not inst.is_simple()

    def test_empty_instance(self):
        inst = BipartiteInstance(0, 0, [])
        assert inst.stats().delta == 0 and inst.stats().rank == 0


class TestDegreesAndStats:
    def test_left_degrees(self):
        inst = tiny()
        assert [inst.left_degree(u) for u in range(2)] == [2, 2]

    def test_right_degrees(self):
        inst = tiny()
        assert [inst.right_degree(v) for v in range(3)] == [1, 2, 1]

    def test_stats_fields(self):
        s = tiny().stats()
        assert (s.delta, s.Delta, s.rank, s.min_rank) == (2, 2, 2, 1)

    def test_stats_cached_identity(self):
        inst = tiny()
        assert inst.stats() is inst.stats()

    def test_isolated_left_node_gives_delta_zero(self):
        inst = BipartiteInstance(2, 1, [(0, 0)])
        assert inst.delta == 0

    def test_degree_histograms(self):
        inst = tiny()
        assert inst.degree_histogram_left() == {2: 2}
        assert inst.degree_histogram_right() == {1: 2, 2: 1}


class TestNeighbors:
    def test_left_neighbors_order(self):
        assert tiny().left_neighbors(0) == [0, 1]

    def test_right_neighbors(self):
        assert tiny().right_neighbors(1) == [0, 1]

    def test_neighbor_sets_dedupe(self):
        inst = BipartiteInstance(1, 1, [(0, 0), (0, 0)], allow_multi=True)
        assert inst.left_neighbor_set(0) == {0}
        assert len(inst.left_neighbors(0)) == 2


class TestSubgraph:
    def test_subgraph_keeps_node_sets(self):
        sub, emap = tiny().subgraph([0, 3])
        assert sub.n_left == 2 and sub.n_right == 3
        assert sub.n_edges == 2 and emap == [0, 3]

    def test_subgraph_edge_map_points_to_originals(self):
        inst = tiny()
        sub, emap = inst.subgraph([1, 2])
        for new_id, old_id in enumerate(emap):
            assert sub.edges[new_id] == inst.edges[old_id]

    def test_without_edges_complements_subgraph(self):
        inst = tiny()
        sub, emap = inst.without_edges([0])
        assert emap == [1, 2, 3]

    def test_subgraph_rejects_bad_edge_id(self):
        with pytest.raises(ValueError):
            tiny().subgraph([99])

    def test_subgraph_dedupes_edge_ids(self):
        sub, emap = tiny().subgraph([1, 1, 1])
        assert sub.n_edges == 1


class TestComponents:
    def test_single_component(self):
        comps = tiny().connected_components()
        assert len(comps) == 1
        lefts, rights, eids = comps[0]
        assert lefts == [0, 1] and rights == [0, 1, 2] and eids == [0, 1, 2, 3]

    def test_disconnected_components(self):
        inst = BipartiteInstance(2, 2, [(0, 0), (1, 1)])
        comps = inst.connected_components()
        assert len(comps) == 2

    def test_isolated_right_node_is_own_component(self):
        inst = BipartiteInstance(1, 2, [(0, 0)])
        comps = inst.connected_components()
        assert ([], [1], []) in comps

    def test_isolated_left_node_is_own_component(self):
        inst = BipartiteInstance(2, 1, [(0, 0)])
        comps = inst.connected_components()
        assert ([1], [], []) in comps

    def test_induced_component_roundtrip(self):
        inst = BipartiteInstance(2, 2, [(0, 0), (1, 1)])
        lefts, rights, eids = inst.connected_components()[0]
        sub, lmap, rmap = inst.induced_component(lefts, rights, eids)
        assert sub.n_left == 1 and sub.n_right == 1 and sub.n_edges == 1

    @given(instances())
    @settings(max_examples=50)
    def test_components_partition_everything(self, inst):
        comps = inst.connected_components()
        all_lefts = sorted(u for lefts, _, _ in comps for u in lefts)
        all_rights = sorted(v for _, rights, _ in comps for v in rights)
        all_edges = sorted(e for _, _, eids in comps for e in eids)
        assert all_lefts == list(range(inst.n_left))
        assert all_rights == list(range(inst.n_right))
        assert all_edges == list(range(inst.n_edges))


class TestExports:
    def test_to_networkx_counts(self):
        g = tiny().to_networkx()
        assert g.number_of_nodes() == 5 and g.number_of_edges() == 4

    def test_repr_mentions_parameters(self):
        assert "delta=2" in repr(tiny())


class TestProperties:
    @given(instances())
    @settings(max_examples=50)
    def test_edge_degree_consistency(self, inst):
        assert sum(inst.left_degree(u) for u in range(inst.n_left)) == inst.n_edges
        assert sum(inst.right_degree(v) for v in range(inst.n_right)) == inst.n_edges

    @given(instances())
    @settings(max_examples=50)
    def test_stats_bounds(self, inst):
        s = inst.stats()
        assert s.delta <= s.Delta
        assert s.min_rank <= s.rank

    @given(instances(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=50)
    def test_subgraph_degrees_never_grow(self, inst, salt):
        keep = [e for e in range(inst.n_edges) if (e + salt) % 3 != 0]
        sub, _ = inst.subgraph(keep)
        for u in range(inst.n_left):
            assert sub.left_degree(u) <= inst.left_degree(u)
        for v in range(inst.n_right):
            assert sub.right_degree(v) <= inst.right_degree(v)
