"""Tests for the doubling, virtual-splitting and trimming transforms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bipartite import (
    BipartiteInstance,
    double_cover,
    random_left_regular,
    split_high_degree_left,
    trim_left_degrees,
)
from repro.bipartite.generators import random_simple_graph


class TestDoubleCover:
    def test_triangle(self):
        adj = [[1, 2], [0, 2], [0, 1]]
        inst = double_cover(adj)
        assert inst.n_left == 3 and inst.n_right == 3
        assert inst.n_edges == 6  # two bipartite edges per graph edge

    def test_degrees_match_graph(self):
        adj = random_simple_graph(20, 0.3, seed=1)
        inst = double_cover(adj)
        for v in range(20):
            assert inst.left_degree(v) == len(adj[v])
            assert inst.right_degree(v) == len(adj[v])

    def test_delta_le_rank_always(self):
        """The paper's point: doubled instances always have δ <= r."""
        adj = random_simple_graph(25, 0.2, seed=2)
        inst = double_cover(adj)
        if inst.n_edges:
            assert inst.delta <= inst.rank

    def test_neighborhood_structure(self):
        # edge {0, 1}: uL(0) adjacent to vR(1) and vice versa
        inst = double_cover([[1], [0]])
        assert inst.left_neighbors(0) == [1]
        assert inst.left_neighbors(1) == [0]


class TestSplitHighDegreeLeft:
    def test_no_split_below_2delta(self):
        inst = random_left_regular(10, 30, 5, seed=3)
        virtual, owner = split_high_degree_left(inst, delta=5)
        assert virtual.n_left == 10 and owner == list(range(10))

    def test_split_counts(self):
        # one left node of degree 13, delta 4 -> floor(13/4) = 3 virtual nodes
        inst = BipartiteInstance(1, 13, [(0, v) for v in range(13)])
        virtual, owner = split_high_degree_left(inst, delta=4)
        assert virtual.n_left == 3 and owner == [0, 0, 0]

    def test_virtual_degree_window(self):
        inst = BipartiteInstance(1, 13, [(0, v) for v in range(13)])
        virtual, _ = split_high_degree_left(inst, delta=4)
        degs = [virtual.left_degree(j) for j in range(virtual.n_left)]
        assert degs == [4, 4, 5]
        assert all(4 <= d < 8 for d in degs)

    def test_right_side_preserved(self):
        inst = BipartiteInstance(2, 9, [(0, v) for v in range(9)] + [(1, 0), (1, 1), (1, 2)])
        virtual, _ = split_high_degree_left(inst, delta=3)
        assert virtual.n_right == inst.n_right
        assert virtual.n_edges == inst.n_edges

    def test_weak_splitting_pulls_back(self):
        """A virtual weak splitting satisfies every original constraint."""
        from repro.core import is_weak_splitting, solve_weak_splitting

        inst = BipartiteInstance(1, 12, [(0, v) for v in range(12)])
        virtual, owner = split_high_degree_left(inst, delta=3)
        coloring = solve_weak_splitting(virtual, method="bruteforce")
        assert is_weak_splitting(inst, coloring)

    def test_rejects_degree_below_delta(self):
        inst = BipartiteInstance(1, 2, [(0, 0), (0, 1)])
        with pytest.raises(ValueError):
            split_high_degree_left(inst, delta=3)

    @given(st.integers(min_value=3, max_value=40), st.integers(min_value=3, max_value=9))
    @settings(max_examples=40)
    def test_window_property(self, degree, delta):
        if degree < delta:
            return
        inst = BipartiteInstance(1, degree, [(0, v) for v in range(degree)])
        virtual, owner = split_high_degree_left(inst, delta=delta)
        assert virtual.n_left == degree // delta
        for j in range(virtual.n_left):
            assert delta <= virtual.left_degree(j) <= 2 * delta - 1
        assert sum(virtual.left_degree(j) for j in range(virtual.n_left)) == degree


class TestTrim:
    def test_trims_to_target(self):
        inst = random_left_regular(10, 30, 9, seed=4)
        trimmed, emap = trim_left_degrees(inst, 4)
        assert all(trimmed.left_degree(u) == 4 for u in range(10))

    def test_low_degree_nodes_untouched(self):
        inst = BipartiteInstance(2, 5, [(0, v) for v in range(5)] + [(1, 0)])
        trimmed, _ = trim_left_degrees(inst, 3)
        assert trimmed.left_degree(0) == 3 and trimmed.left_degree(1) == 1

    def test_edge_map_consistent(self):
        inst = random_left_regular(8, 20, 6, seed=5)
        trimmed, emap = trim_left_degrees(inst, 2)
        for new_id, old_id in enumerate(emap):
            assert trimmed.edges[new_id] == inst.edges[old_id]

    def test_rejects_nonpositive_target(self):
        inst = random_left_regular(3, 3, 2, seed=1)
        with pytest.raises(ValueError):
            trim_left_degrees(inst, 0)

    def test_rank_never_grows(self):
        inst = random_left_regular(20, 10, 5, seed=6)
        trimmed, _ = trim_left_degrees(inst, 3)
        assert trimmed.rank <= inst.rank
