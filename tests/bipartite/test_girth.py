"""Tests for girth computation and high-girth instance construction."""

import pytest

from repro.bipartite import (
    BipartiteInstance,
    bipartite_girth,
    graph_girth,
    high_girth_instance,
    incidence_instance,
    peel_short_cycles,
)
from repro.bipartite.generators import random_regular_graph
from tests.conftest import cycle_graph, complete_graph


class TestGraphGirth:
    def test_triangle(self):
        assert graph_girth([[1, 2], [0, 2], [0, 1]]) == 3

    def test_cycle(self):
        assert graph_girth(cycle_graph(7)) == 7

    def test_tree_has_no_girth(self):
        assert graph_girth([[1], [0, 2], [1]]) is None

    def test_k4(self):
        assert graph_girth(complete_graph(4)) == 3

    def test_two_cycles_takes_min(self):
        # a 3-cycle and a 5-cycle, disjoint
        adj = [[1, 2], [0, 2], [0, 1]] + [[x + 3 for x in row] for row in cycle_graph(5)]
        assert graph_girth(adj) == 3


class TestBipartiteGirth:
    def test_four_cycle(self):
        inst = BipartiteInstance(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)])
        assert bipartite_girth(inst) == 4

    def test_tree_instance(self):
        inst = BipartiteInstance(1, 3, [(0, 0), (0, 1), (0, 2)])
        assert bipartite_girth(inst) is None

    def test_six_cycle(self):
        inst = BipartiteInstance(3, 3, [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (0, 2)])
        assert bipartite_girth(inst) == 6

    def test_rejects_multigraph(self):
        inst = BipartiteInstance(1, 1, [(0, 0), (0, 0)], allow_multi=True)
        with pytest.raises(ValueError):
            bipartite_girth(inst)


class TestIncidence:
    def test_rank_exactly_two(self):
        adj = cycle_graph(5)
        inst = incidence_instance(adj)
        assert inst.rank == 2

    def test_girth_doubles(self):
        adj = cycle_graph(5)
        assert bipartite_girth(incidence_instance(adj)) == 10

    def test_left_degrees_match_graph(self):
        adj = random_regular_graph(12, 3, seed=1)
        inst = incidence_instance(adj)
        for v in range(12):
            assert inst.left_degree(v) == len(adj[v])

    def test_edge_count(self):
        adj = cycle_graph(6)
        inst = incidence_instance(adj)
        assert inst.n_right == 6 and inst.n_edges == 12


class TestPeeling:
    def test_removes_triangles(self):
        adj = complete_graph(5)
        peeled = peel_short_cycles(adj, 5, seed=1)
        g = graph_girth(peeled)
        assert g is None or g >= 5

    def test_high_girth_input_untouched(self):
        adj = cycle_graph(9)
        peeled = peel_short_cycles(adj, 5, seed=1)
        assert sum(len(x) for x in peeled) == sum(len(x) for x in adj)


class TestHighGirthInstance:
    def test_meets_girth_and_delta(self):
        inst = high_girth_instance(80, 4, seed=2)
        g = bipartite_girth(inst)
        assert g is None or g >= 10
        assert inst.delta >= 2
        assert inst.rank == 2

    def test_reproducible(self):
        a = high_girth_instance(50, 3, seed=9, min_delta=1)
        b = high_girth_instance(50, 3, seed=9, min_delta=1)
        assert a.edges == b.edges

    def test_rejects_odd_min_girth(self):
        with pytest.raises(ValueError):
            high_girth_instance(20, 3, seed=1, min_girth=9)
