"""Tests for the hypergraph view."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bipartite import BipartiteInstance, Hypergraph, random_left_regular


class TestHypergraph:
    def test_basic_parameters(self):
        hg = Hypergraph(4, [(0, 1, 2), (1, 3), (0,)])
        assert hg.n_vertices == 4 and hg.n_edges == 3
        assert hg.rank == 3
        assert hg.vertex_degree(1) == 2
        assert hg.min_vertex_degree() == 1

    def test_rejects_repeated_vertex_in_edge(self):
        with pytest.raises(ValueError):
            Hypergraph(3, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Hypergraph(2, [(0, 2)])

    def test_empty(self):
        hg = Hypergraph(0, [])
        assert hg.rank == 0 and hg.min_vertex_degree() == 0

    def test_to_bipartite_parameters_match(self):
        hg = Hypergraph(5, [(0, 1), (1, 2, 3), (3, 4), (0, 4)])
        inst = hg.to_bipartite()
        assert inst.n_left == 5 and inst.n_right == 4
        assert inst.rank == hg.rank
        assert inst.delta == hg.min_vertex_degree()

    def test_roundtrip(self):
        hg = Hypergraph(5, [(0, 1), (1, 2, 3), (3, 4)])
        back = Hypergraph.from_bipartite(hg.to_bipartite())
        assert back.n_vertices == hg.n_vertices
        assert [set(e) for e in back.edges] == [set(e) for e in hg.edges]

    def test_from_bipartite_collapses_multi_edges(self):
        inst = BipartiteInstance(2, 1, [(0, 0), (0, 0), (1, 0)], allow_multi=True)
        hg = Hypergraph.from_bipartite(inst)
        assert set(hg.edges[0]) == {0, 1}

    def test_weak_splitting_through_hypergraph_view(self):
        """A user building hypergraphs gets solvable instances."""
        from repro.core import is_weak_splitting, solve_weak_splitting

        base = random_left_regular(100, 100, 20, seed=1)
        hg = Hypergraph.from_bipartite(base)
        inst = hg.to_bipartite()
        coloring = solve_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=12))
    @settings(max_examples=30)
    def test_roundtrip_property(self, n_vertices, n_edges):
        import random

        rng = random.Random(n_vertices * 31 + n_edges)
        edges = []
        for _ in range(n_edges):
            k = rng.randint(1, n_vertices)
            edges.append(tuple(rng.sample(range(n_vertices), k)))
        hg = Hypergraph(n_vertices, edges)
        back = Hypergraph.from_bipartite(hg.to_bipartite())
        assert [set(e) for e in back.edges] == [set(e) for e in hg.edges]
