"""Degenerate-parameter behaviour of the scenario-graph generators.

Every boundary must yield either a clean ``ValueError`` (from ``require``)
or a valid empty/trivial graph — never silent garbage: these generators
feed the sweep runner, where a malformed graph would corrupt experiment
conclusions rather than crash.
"""

import pytest

from repro.bipartite.generators import (
    configuration_model_regular,
    powerlaw_bipartite,
    random_sparse_graph,
)
from repro.local import Network


def assert_valid_adjacency(adj):
    """Symmetric, loop-free, in-range — Network's constructor checks most."""
    Network(adj)
    for i, nbrs in enumerate(adj):
        assert i not in nbrs


class TestRandomSparseGraph:
    def test_empty_graph(self):
        assert random_sparse_graph(0, 0.0) == []

    def test_single_node_zero_degree(self):
        assert random_sparse_graph(1, 0.0) == [[]]

    def test_single_node_fractional_degree_rounds_to_empty(self):
        assert random_sparse_graph(1, 0.5) == [[]]

    def test_single_node_degree_one_rejected(self):
        # No simple edge exists on one node; the degree request must fail
        # loudly instead of looping in rejection sampling.
        with pytest.raises(ValueError, match="avg_degree must be < n"):
            random_sparse_graph(1, 1.0)

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            random_sparse_graph(5, -1.0)

    def test_two_nodes_one_edge(self):
        adj = random_sparse_graph(2, 1.0, seed=0)
        assert adj == [[1], [0]]
        assert_valid_adjacency(adj)


class TestConfigurationModelRegular:
    def test_empty_graph(self):
        assert configuration_model_regular(0, 0) == []

    def test_single_node_degree_zero(self):
        assert configuration_model_regular(1, 0) == [[]]

    def test_degree_zero_many_nodes(self):
        assert configuration_model_regular(4, 0) == [[], [], [], []]

    def test_odd_degree_sum_rejected(self):
        with pytest.raises(ValueError, match="must be even"):
            configuration_model_regular(5, 3)
        with pytest.raises(ValueError, match="must be even"):
            configuration_model_regular(1, 1)

    def test_degree_at_least_n_rejected(self):
        with pytest.raises(ValueError, match="0 <= d < n"):
            configuration_model_regular(4, 4)

    def test_small_regular_graphs_valid(self):
        for n, d in ((2, 1), (4, 3), (6, 2)):
            adj = configuration_model_regular(n, d, seed=1)
            assert all(len(nbrs) == d for nbrs in adj)
            assert_valid_adjacency(adj)


class TestPowerlawBipartite:
    def test_dmin_above_n_right_rejected(self):
        with pytest.raises(ValueError, match="dmin <= dmax <= n_right"):
            powerlaw_bipartite(1, 1, dmin=2, dmax=2)

    def test_zero_dmin_rejected(self):
        with pytest.raises(ValueError, match="0 < dmin"):
            powerlaw_bipartite(1, 2, dmin=0, dmax=1)

    def test_empty_instance_rejected(self):
        with pytest.raises(ValueError, match="dmin <= dmax <= n_right"):
            powerlaw_bipartite(0, 0, dmin=1, dmax=1)

    def test_dmax_above_n_right_rejected(self):
        with pytest.raises(ValueError, match="dmax <= n_right"):
            powerlaw_bipartite(2, 3, dmin=1, dmax=5)

    def test_minimal_instance(self):
        inst = powerlaw_bipartite(1, 1, dmin=1, dmax=1, seed=0)
        assert inst.n_left == 1 and inst.n_right == 1
        assert list(inst.edges) == [(0, 0)]

    def test_no_left_nodes_is_a_valid_empty_instance(self):
        inst = powerlaw_bipartite(0, 3, dmin=1, dmax=2, seed=0)
        assert inst.n_left == 0 and inst.n_right == 3
        assert list(inst.edges) == []

    def test_degrees_within_bounds_and_distinct_neighbors(self):
        inst = powerlaw_bipartite(40, 30, dmin=2, dmax=9, seed=7)
        for u in range(inst.n_left):
            nbrs = list(inst.left_neighbors(u))
            assert 2 <= len(nbrs) <= 9
            assert len(set(nbrs)) == len(nbrs)
