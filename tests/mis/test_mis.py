"""Tests for MIS algorithms (Luby + greedy) and Lemma 4.3."""

import pytest

from repro.bipartite.generators import random_regular_graph, random_simple_graph
from repro.local import RoundLedger
from repro.mis import greedy_mis, is_mis, luby_mis, mis_lower_bound
from tests.conftest import complete_graph, cycle_graph, path_graph


class TestIsMis:
    def test_valid(self):
        assert is_mis(path_graph(3), {0, 2})

    def test_not_independent(self):
        assert not is_mis(path_graph(3), {0, 1})

    def test_not_maximal(self):
        assert not is_mis(path_graph(5), {0})

    def test_empty_graph(self):
        assert is_mis([], set())


class TestGreedy:
    def test_path(self):
        assert greedy_mis(path_graph(5)) == {0, 2, 4}

    def test_respects_order(self):
        assert greedy_mis(path_graph(3), order=[1, 0, 2]) == {1}

    def test_always_valid(self):
        adj = random_simple_graph(50, 0.15, seed=1)
        assert is_mis(adj, greedy_mis(adj))


class TestLuby:
    def test_cycle(self):
        adj = cycle_graph(12)
        mis, rounds = luby_mis(adj, seed=1)
        assert is_mis(adj, mis)

    def test_complete_graph_single_node(self):
        adj = complete_graph(6)
        mis, _ = luby_mis(adj, seed=2)
        assert len(mis) == 1 and is_mis(adj, mis)

    def test_isolated_nodes_joined(self):
        adj = [[], [], [3], [2]]
        mis, _ = luby_mis(adj, seed=3)
        assert {0, 1} <= mis and is_mis(adj, mis)

    def test_random_graphs_valid(self):
        for seed in range(4):
            adj = random_simple_graph(60, 0.1, seed=seed)
            mis, _ = luby_mis(adj, seed=seed + 10)
            assert is_mis(adj, mis)

    def test_rounds_logarithmic_in_practice(self):
        adj = random_regular_graph(200, 8, seed=5)
        _, rounds = luby_mis(adj, seed=6)
        assert rounds <= 40  # ~2 rounds per phase, O(log n) phases

    def test_ledger_charged_simulated(self):
        led = RoundLedger()
        luby_mis(cycle_graph(8), seed=7, ledger=led)
        assert led.simulated_total() > 0

    def test_reproducible(self):
        adj = random_simple_graph(40, 0.2, seed=8)
        a, _ = luby_mis(adj, seed=9)
        b, _ = luby_mis(adj, seed=9)
        assert a == b


class TestLowerBound:
    def test_lemma_43_value(self):
        assert mis_lower_bound(100, 4) == 20

    def test_lemma_43_holds_for_luby(self):
        adj = random_regular_graph(60, 5, seed=10)
        mis, _ = luby_mis(adj, seed=11)
        assert len(mis) >= mis_lower_bound(60, 5)

    def test_lemma_43_holds_for_greedy(self):
        adj = random_simple_graph(80, 0.1, seed=12)
        Delta = max(len(x) for x in adj)
        assert len(greedy_mis(adj)) >= mis_lower_bound(80, Delta)
