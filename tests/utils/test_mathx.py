"""Unit tests for repro.utils.mathx."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.mathx import (
    binomial_tail_upper,
    ceil_log2,
    chernoff_above,
    chernoff_below,
    clamp,
    floor_log2,
    is_power_of_two,
    ln,
    log2,
)


class TestLogs:
    def test_log2_matches_math(self):
        assert log2(8) == 3.0

    def test_ln_matches_math(self):
        assert ln(math.e) == pytest.approx(1.0)

    def test_log2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log2(0)

    @pytest.mark.parametrize("x,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)])
    def test_ceil_log2_integers(self, x, expected):
        assert ceil_log2(x) == expected

    @pytest.mark.parametrize("x,expected", [(1, 0), (2, 1), (3, 1), (4, 2), (1023, 9), (1024, 10)])
    def test_floor_log2_integers(self, x, expected):
        assert floor_log2(x) == expected

    def test_ceil_log2_fractional(self):
        assert ceil_log2(2.5) == 2

    def test_floor_log2_fractional(self):
        assert floor_log2(2.5) == 1

    def test_ceil_log2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    def test_floor_log2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            floor_log2(-1)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_ceil_floor_sandwich(self, n):
        assert floor_log2(n) <= math.log2(n) <= ceil_log2(n)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_exact_on_powers_of_two(self, k):
        n = 1 << (k % 30)
        assert ceil_log2(n) == floor_log2(n) == (k % 30)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0, 1) == 0.5

    def test_below(self):
        assert clamp(-3, 0, 1) == 0

    def test_above(self):
        assert clamp(9, 0, 1) == 1

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            clamp(0, 2, 1)


class TestPowersOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 1024])
    def test_powers(self, n):
        assert is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, -2, 3, 6, 1023])
    def test_non_powers(self, n):
        assert not is_power_of_two(n)


class TestTailBounds:
    def test_binomial_tail_vacuous_for_zero_k(self):
        assert binomial_tail_upper(10, 0, 0.5) == 1.0

    def test_binomial_tail_never_exceeds_one(self):
        assert binomial_tail_upper(10, 1, 0.9) == 1.0

    def test_binomial_tail_small_for_large_deviation(self):
        # Bin(100, 0.1): Pr[X >= 50] is tiny; (e*100*0.1/50)^50 << 1
        assert binomial_tail_upper(100, 50, 0.1) < 1e-12

    def test_binomial_tail_dominates_exact_simple_case(self):
        # Bin(2, 0.5), k=2: exact 0.25; bound (e*2*0.5/2)^2 = (e/2)^2 ~ 1.85 -> capped 1
        assert binomial_tail_upper(2, 2, 0.5) >= 0.25

    def test_chernoff_below_at_zero_delta(self):
        assert chernoff_below(100, 0) == 1.0

    def test_chernoff_below_decreases_in_delta(self):
        assert chernoff_below(100, 0.5) < chernoff_below(100, 0.1)

    def test_chernoff_below_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            chernoff_below(10, 1.5)

    def test_chernoff_above_large_delta_branch(self):
        assert 0 < chernoff_above(10, 2.0) < chernoff_above(10, 1.0)

    def test_chernoff_above_rejects_negative(self):
        with pytest.raises(ValueError):
            chernoff_above(10, -0.1)

    @given(
        st.floats(min_value=1, max_value=1e4),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_chernoff_bounds_are_probabilities(self, mu, delta):
        assert 0 <= chernoff_below(mu, delta) <= 1
        assert 0 <= chernoff_above(mu, delta) <= 1
