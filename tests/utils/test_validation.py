"""Unit tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    require,
    require_in_range,
    require_nonnegative,
    require_positive,
    require_probability,
)


def test_require_passes():
    require(True, "never raised")


def test_require_raises_with_message():
    with pytest.raises(ValueError, match="boom"):
        require(False, "boom")


def test_require_positive_accepts_positive():
    require_positive(0.1, "x")


@pytest.mark.parametrize("bad", [0, -1, -0.5])
def test_require_positive_rejects(bad):
    with pytest.raises(ValueError, match="x"):
        require_positive(bad, "x")


def test_require_nonnegative_accepts_zero():
    require_nonnegative(0, "x")


def test_require_nonnegative_rejects_negative():
    with pytest.raises(ValueError):
        require_nonnegative(-1e-9, "x")


def test_require_in_range_bounds_inclusive():
    require_in_range(0, 0, 1, "x")
    require_in_range(1, 0, 1, "x")


def test_require_in_range_rejects_outside():
    with pytest.raises(ValueError):
        require_in_range(1.01, 0, 1, "x")


def test_require_probability():
    require_probability(0.5, "p")
    with pytest.raises(ValueError):
        require_probability(2, "p")
