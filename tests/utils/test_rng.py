"""Unit tests for repro.utils.rng."""

import random

import pytest

from repro.utils.rng import CoinTable, as_coin_table, ensure_rng, node_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_generator_passes_through(self):
        rng = random.Random(3)
        assert ensure_rng(rng) is rng


class TestNodeRng:
    def test_pure_function_of_seed_and_id(self):
        assert node_rng(5, 3).random() == node_rng(5, 3).random()

    def test_different_nodes_independent_streams(self):
        assert node_rng(5, 3).random() != node_rng(5, 4).random()

    def test_salt_separates_streams(self):
        assert node_rng(5, 3, "a").random() != node_rng(5, 3, "b").random()

    def test_other_nodes_consumption_is_irrelevant(self):
        a = node_rng(5, 3)
        b = node_rng(5, 4)
        b.random()  # consuming b's bits must not perturb a
        assert a.random() == node_rng(5, 3).random()


class TestSpawn:
    def test_deterministic_given_parent_state(self):
        a = spawn(random.Random(1), "x").random()
        b = spawn(random.Random(1), "x").random()
        assert a == b

    def test_labels_separate(self):
        parent = random.Random(1)
        parent2 = random.Random(1)
        assert spawn(parent, "x").random() != spawn(parent2, "y").random()


class TestCoinTable:
    """The dense backend's coin supply: replay exactness + philox contract."""

    IDS = [10, 11, 12, 13, 14]

    def test_replay_matches_node_rng_streams(self):
        np = pytest.importorskip("numpy")
        table = CoinTable(7, self.IDS, kind="replay")
        # Interleaved draws across nodes must track each node's own stream.
        a = table.uniforms([0, 2, 4])
        b = table.uniforms([0, 1, 2, 3, 4])
        streams = {uid: node_rng(7, uid) for uid in self.IDS}
        expect_a = [streams[10].random(), streams[12].random(), streams[14].random()]
        expect_b = [streams[uid].random() for uid in self.IDS]
        assert list(a) == expect_a
        assert list(b) == expect_b
        assert a.dtype == np.float64

    def test_replay_uniform_runs_draw_in_port_order(self):
        pytest.importorskip("numpy")
        table = CoinTable(3, self.IDS, kind="replay")
        out = table.uniform_runs([1, 3], [2, 3])
        s1, s3 = node_rng(3, 11), node_rng(3, 13)
        assert list(out) == [s1.random(), s1.random(), s3.random(), s3.random(), s3.random()]

    def test_replay_randints_use_randrange(self):
        pytest.importorskip("numpy")
        table = CoinTable(9, self.IDS, kind="replay")
        out = table.randints([0, 4], [5, 3])
        assert list(out) == [node_rng(9, 10).randrange(5), node_rng(9, 14).randrange(3)]

    def test_philox_deterministic_per_seed(self):
        pytest.importorskip("numpy")
        a = CoinTable(5, self.IDS).uniforms(range(5))
        b = CoinTable(5, self.IDS).uniforms(range(5))
        c = CoinTable(6, self.IDS).uniforms(range(5))
        assert list(a) == list(b)
        assert list(a) != list(c)

    def test_philox_bounds_and_shapes(self):
        np = pytest.importorskip("numpy")
        table = CoinTable(1, self.IDS)
        u = table.uniforms(range(5))
        assert u.shape == (5,) and ((u >= 0) & (u < 1)).all()
        r = table.randints([0, 1, 2], [1, 4, 7])
        assert r.shape == (3,)
        assert (r >= 0).all() and (r < np.array([1, 4, 7])).all()
        runs = table.uniform_runs([0, 1], [3, 0])
        assert runs.shape == (3,)

    def test_philox_setup_is_o1(self):
        # The whole point: no per-node generator objects.
        pytest.importorskip("numpy")
        table = CoinTable(0, range(10**7))
        assert table.uniforms([0]).shape == (1,)

    def test_unknown_kind_rejected(self):
        pytest.importorskip("numpy")
        with pytest.raises(ValueError):
            CoinTable(0, self.IDS, kind="sha512")

    def test_as_coin_table_passthrough_and_coercion(self):
        pytest.importorskip("numpy")
        table = CoinTable(2, self.IDS, kind="replay")
        assert as_coin_table(table, 99, []) is table
        made = as_coin_table("philox", 2, self.IDS)
        assert isinstance(made, CoinTable) and made.kind == "philox"
