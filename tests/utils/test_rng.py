"""Unit tests for repro.utils.rng."""

import random

from repro.utils.rng import ensure_rng, node_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_is_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_generator_passes_through(self):
        rng = random.Random(3)
        assert ensure_rng(rng) is rng


class TestNodeRng:
    def test_pure_function_of_seed_and_id(self):
        assert node_rng(5, 3).random() == node_rng(5, 3).random()

    def test_different_nodes_independent_streams(self):
        assert node_rng(5, 3).random() != node_rng(5, 4).random()

    def test_salt_separates_streams(self):
        assert node_rng(5, 3, "a").random() != node_rng(5, 3, "b").random()

    def test_other_nodes_consumption_is_irrelevant(self):
        a = node_rng(5, 3)
        b = node_rng(5, 4)
        b.random()  # consuming b's bits must not perturb a
        assert a.random() == node_rng(5, 3).random()


class TestSpawn:
    def test_deterministic_given_parent_state(self):
        a = spawn(random.Random(1), "x").random()
        b = spawn(random.Random(1), "x").random()
        assert a == b

    def test_labels_separate(self):
        parent = random.Random(1)
        parent2 = random.Random(1)
        assert spawn(parent, "x").random() != spawn(parent2, "y").random()
