"""Failure-injection tests: every guard rail must actually fire.

The library leans on verification (Las-Vegas wrappers, solver-level
verify, estimator certificates).  These tests corrupt inputs and internal
state deliberately and assert the corresponding guard catches it — a
silent-acceptance bug in any of these paths would invalidate experiment
conclusions.
"""

import pytest

from repro.bipartite import BLUE, RED, BipartiteInstance, random_left_regular
from repro.core import (
    is_weak_splitting,
    solve_weak_splitting,
    weak_splitting_violations,
)
from repro.derand import WeakSplittingEstimator, greedy_minimize
from repro.local import LocalAlgorithm, Network, NodeView, run_local
from repro.orientation import Multigraph, Orientation


class TestVerifierCatchesCorruption:
    def test_flipping_one_variable_detected(self):
        inst = random_left_regular(60, 60, 16, seed=1)
        coloring = solve_weak_splitting(inst)
        # find a variable whose flip breaks some constraint
        broken = False
        for v in range(inst.n_right):
            corrupted = list(coloring)
            corrupted[v] = RED if coloring[v] == BLUE else BLUE
            if weak_splitting_violations(inst, corrupted):
                broken = True
                break
        # On dense instances a single flip rarely breaks anything; erase
        # a color entirely instead, which must always be caught:
        corrupted = [RED] * inst.n_right
        assert weak_splitting_violations(inst, corrupted)

    def test_uncoloring_everything_detected(self):
        inst = random_left_regular(20, 20, 6, seed=2)
        assert not is_weak_splitting(inst, [None] * inst.n_right)

    def test_partial_corruption_localized(self):
        """Violations list exactly the constraints whose neighborhoods
        became monochromatic."""
        inst = BipartiteInstance(2, 4, [(0, 0), (0, 1), (1, 2), (1, 3)])
        coloring = [RED, BLUE, RED, RED]  # constraint 1 broken, 0 fine
        assert weak_splitting_violations(inst, coloring) == [1]


class TestEstimatorGuards:
    def test_broken_estimator_caught_by_supermartingale_check(self):
        """An estimator whose gain() lies must trip the invariant assert."""

        class LyingEstimator(WeakSplittingEstimator):
            def gain(self, v, color):
                return -1.0  # claims every move improves

            def commit(self, v, color):
                self._value += 1.0  # while the value actually grows

        inst = random_left_regular(20, 20, 16, seed=3)
        lying = LyingEstimator(inst)
        with pytest.raises(AssertionError, match="supermartingale"):
            greedy_minimize(lying, range(inst.n_right))

    def test_double_processing_rejected(self):
        inst = random_left_regular(10, 12, 8, seed=4)
        est = WeakSplittingEstimator(inst)
        with pytest.raises(ValueError, match="twice"):
            greedy_minimize(est, [0, 0] + list(range(1, 12)), strict=False)


class TestSimulatorGuards:
    def test_sending_on_invalid_port_rejected(self):
        class BadSender(LocalAlgorithm):
            def init(self, view):
                pass

            def send(self, view, round_no):
                return {view.degree + 3: "oops"}

            def receive(self, view, round_no, inbox):
                view.halted = True

        net = Network([[1], [0]])
        with pytest.raises(ValueError, match="invalid port"):
            run_local(net, BadSender(), max_rounds=2)

    def test_orientation_guards(self):
        g = Multigraph(2, [(0, 1)])
        with pytest.raises(ValueError):
            Orientation(g, (2,))
        with pytest.raises(ValueError):
            Orientation(g, ())


class TestSolverVerification:
    def test_verify_flag_rechecks_output(self):
        """With verify=True (default) the façade re-validates; we confirm
        the check is live by feeding an unsolvable-but-bruteforcible
        instance and observing the explicit failure rather than a bogus
        coloring."""
        from repro.core import NoKnownAlgorithmError

        # A variable shared by two constraints each of degree 2, where all
        # constraints see the same two variables: impossible to satisfy 3+
        # constraints... build genuinely unsolvable: one constraint with
        # degree 2 whose two variables are also the only variables of a
        # second constraint — both need red+blue: fine, solvable. Make it
        # unsolvable: two variables, three constraints pairwise sharing
        # them is still solvable. Truly unsolvable at degree >= 2 requires
        # a constraint whose neighbors coincide... weak splitting with all
        # constraints of degree >= 2 on distinct variables is always
        # satisfiable per-constraint but global conflicts need rank >= 2:
        # u1 = {a, b}, u2 = {a, b} -> both satisfied by a=R, b=B. Use the
        # classic parity obstruction instead: impossible only with degree
        # constraints; so instead verify the bruteforce failure message on
        # a degree-1 constraint.
        inst = BipartiteInstance(1, 2, [(0, 0)])
        with pytest.raises(ValueError, match="degree < 2"):
            solve_weak_splitting(inst)

    def test_forced_wrong_method_fails_loud(self):
        inst = random_left_regular(200, 200, 5, seed=5)  # below 2 log n
        from repro.derand import DerandomizationError

        with pytest.raises(DerandomizationError):
            solve_weak_splitting(inst, method="deterministic")
