"""Tests for the Theorem 2.3 degree-splitting substrate."""

import pytest

from repro.local import RoundLedger, degree_splitting_rounds
from repro.orientation import Multigraph, directed_degree_splitting


def big_even_graph():
    # 3 parallel 20-cycles through the same nodes -> degree 6 everywhere
    n = 20
    edges = []
    for _ in range(3):
        edges += [(i, (i + 1) % n) for i in range(n)]
    return Multigraph(n, edges)


class TestEulerianEngine:
    def test_guarantee_holds_for_tiny_eps(self):
        res = directed_degree_splitting(big_even_graph(), eps=1e-6, n=100)
        assert res.satisfies_guarantee()
        assert res.violations() == []

    def test_rounds_follow_theorem_formula(self):
        led = RoundLedger()
        res = directed_degree_splitting(big_even_graph(), eps=0.1, n=1000, ledger=led)
        assert res.rounds == pytest.approx(degree_splitting_rounds(0.1, 1000))
        assert led.total == pytest.approx(res.rounds)

    def test_randomized_variant_cheaper(self):
        det = directed_degree_splitting(big_even_graph(), eps=0.1, n=10**6)
        rnd = directed_degree_splitting(
            big_even_graph(), eps=0.1, n=10**6, randomized=True
        )
        assert rnd.rounds < det.rounds

    def test_engine_recorded(self):
        res = directed_degree_splitting(big_even_graph(), eps=0.5, n=10)
        assert res.engine == "eulerian"


class TestRandomEngine:
    def test_zero_rounds(self):
        res = directed_degree_splitting(
            big_even_graph(), eps=0.5, n=100, engine="random", seed=1
        )
        assert res.rounds == 0

    def test_reproducible(self):
        a = directed_degree_splitting(
            big_even_graph(), eps=0.5, n=100, engine="random", seed=5
        )
        b = directed_degree_splitting(
            big_even_graph(), eps=0.5, n=100, engine="random", seed=5
        )
        assert a.orientation.direction == b.orientation.direction

    def test_usually_violates_small_eps(self):
        """With eps tiny, random orientation should break the guarantee on
        some node of a large graph (this is exactly ablation E15's point)."""
        n = 200
        edges = [(i, j) for i in range(n) for j in range(i + 1, min(i + 30, n))]
        g = Multigraph(n, edges)
        res = directed_degree_splitting(g, eps=1e-9, n=n, engine="random", seed=3)
        assert not res.satisfies_guarantee()


class TestValidation:
    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            directed_degree_splitting(big_even_graph(), eps=0, n=10)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            directed_degree_splitting(big_even_graph(), eps=0.1, n=10, engine="magic")

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            directed_degree_splitting(big_even_graph(), eps=0.1, n=1)
