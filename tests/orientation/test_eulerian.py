"""Tests for the Eulerian orientation engine (discrepancy <= 1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.orientation import Multigraph, eulerian_orientation


@st.composite
def multigraphs(draw, max_nodes=12, max_edges=40):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    )
    edges = draw(st.lists(pairs, max_size=max_edges))
    return Multigraph(n, edges)


class TestEulerianOrientation:
    def test_even_cycle_balanced(self):
        g = Multigraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        ori = eulerian_orientation(g)
        assert ori.max_discrepancy() == 0

    def test_path_has_discrepancy_one_at_ends(self):
        g = Multigraph(3, [(0, 1), (1, 2)])
        ori = eulerian_orientation(g)
        assert ori.discrepancy(0) == 1 and ori.discrepancy(2) == 1
        assert ori.discrepancy(1) == 0

    def test_star_odd_center(self):
        g = Multigraph(4, [(0, 1), (0, 2), (0, 3)])
        ori = eulerian_orientation(g)
        assert ori.discrepancy(0) <= 1

    def test_every_edge_oriented(self):
        g = Multigraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
        ori = eulerian_orientation(g)
        assert len(ori.direction) == g.n_edges
        assert all(d in (1, -1) for d in ori.direction)

    def test_parallel_edges(self):
        g = Multigraph(2, [(0, 1), (0, 1)])
        ori = eulerian_orientation(g)
        # Even degrees: perfectly balanced means one each way.
        assert ori.max_discrepancy() == 0

    def test_self_loops_handled(self):
        g = Multigraph(2, [(0, 0), (0, 1)])
        ori = eulerian_orientation(g)
        assert ori.max_discrepancy() <= 1

    def test_disconnected_components(self):
        g = Multigraph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)])
        ori = eulerian_orientation(g)
        assert ori.max_discrepancy() <= 1

    def test_empty_graph(self):
        ori = eulerian_orientation(Multigraph(3, []))
        assert ori.max_discrepancy() == 0

    @given(multigraphs())
    @settings(max_examples=80, deadline=None)
    def test_discrepancy_at_most_one_always(self, g):
        """The engine's core guarantee, on arbitrary multigraphs."""
        ori = eulerian_orientation(g)
        for v in range(g.n):
            bound = 1 if g.degree(v) % 2 == 1 else 0
            # even-degree nodes are perfectly balanced; odd off by one
            assert ori.discrepancy(v) <= 1
            if g.degree(v) % 2 == 0:
                assert ori.discrepancy(v) == 0

    @given(multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_randomized_comparison_weaker(self, g):
        """Sanity: a random orientation can violate what Eulerian guarantees."""
        ori = eulerian_orientation(g)
        assert ori.max_discrepancy() <= 1
