"""Tests for multigraphs and orientations."""

import pytest

from repro.orientation import Multigraph, Orientation


def square_with_diagonal():
    return Multigraph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])


class TestMultigraph:
    def test_degree_counts_multiplicity(self):
        g = Multigraph(2, [(0, 1), (0, 1)])
        assert g.degree(0) == 2 and g.degree(1) == 2

    def test_self_loop_counts_twice(self):
        g = Multigraph(1, [(0, 0)])
        assert g.degree(0) == 2

    def test_max_degree(self):
        assert square_with_diagonal().max_degree() == 3

    def test_empty_graph(self):
        assert Multigraph(0, []).max_degree() == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Multigraph(2, [(0, 2)])


class TestOrientation:
    def test_head_tail(self):
        g = Multigraph(2, [(0, 1)])
        fwd = Orientation(g, (1,))
        rev = Orientation(g, (-1,))
        assert fwd.head(0) == 1 and fwd.tail(0) == 0
        assert rev.head(0) == 0 and rev.tail(0) == 1

    def test_in_out_degrees(self):
        g = Multigraph(3, [(0, 1), (1, 2), (2, 0)])
        ori = Orientation(g, (1, 1, 1))  # directed cycle
        for v in range(3):
            assert ori.in_degree(v) == 1 and ori.out_degree(v) == 1

    def test_discrepancy_balanced_cycle(self):
        g = Multigraph(3, [(0, 1), (1, 2), (2, 0)])
        ori = Orientation(g, (1, 1, 1))
        assert ori.max_discrepancy() == 0

    def test_discrepancy_star(self):
        g = Multigraph(4, [(0, 1), (0, 2), (0, 3)])
        ori = Orientation(g, (1, 1, 1))  # all outgoing from 0
        assert ori.discrepancy(0) == 3
        assert ori.discrepancy(1) == 1

    def test_self_loop_never_contributes(self):
        g = Multigraph(1, [(0, 0)])
        assert Orientation(g, (1,)).discrepancy(0) == 0

    def test_rejects_wrong_length(self):
        g = Multigraph(2, [(0, 1)])
        with pytest.raises(ValueError):
            Orientation(g, (1, 1))

    def test_rejects_bad_direction_value(self):
        g = Multigraph(2, [(0, 1)])
        with pytest.raises(ValueError):
            Orientation(g, (0,))
