"""Tests for sinkless orientation: verifier and baselines."""

import pytest

from repro.bipartite.generators import random_regular_graph
from repro.orientation import (
    greedy_sinkless_orientation,
    is_sinkless,
    run_trial_and_fix,
    sinks,
)
from tests.conftest import cycle_graph


class TestVerifier:
    def test_directed_cycle_is_sinkless(self):
        adj = cycle_graph(5)
        orientation = {(i, (i + 1) % 5): True for i in range(5)}
        assert is_sinkless(adj, orientation)

    def test_sink_detected(self):
        adj = cycle_graph(3)
        orientation = {(1, 0): True, (2, 0): True, (1, 2): True}
        assert sinks(adj, orientation) == [0]
        assert not is_sinkless(adj, orientation)

    def test_min_degree_filter(self):
        # path: endpoints have degree 1; with min_degree=2 only middle matters
        adj = [[1], [0, 2], [1]]
        orientation = {(1, 0): True, (1, 2): True}
        assert is_sinkless(adj, orientation, min_degree=2)
        assert not is_sinkless(adj, orientation, min_degree=1)

    def test_uncovered_edge_fails(self):
        adj = cycle_graph(3)
        orientation = {(0, 1): True, (1, 2): True}  # edge {0,2} missing
        assert not is_sinkless(adj, orientation)

    def test_double_oriented_edge_rejected(self):
        adj = cycle_graph(3)
        orientation = {(0, 1): True, (1, 0): True, (1, 2): True, (2, 0): True}
        with pytest.raises(ValueError):
            is_sinkless(adj, orientation)

    def test_non_edge_rejected(self):
        adj = cycle_graph(4)
        with pytest.raises(ValueError):
            is_sinkless(adj, {(0, 2): True})


class TestGreedyBaseline:
    def test_cycle(self):
        adj = cycle_graph(8)
        ori = greedy_sinkless_orientation(adj, seed=1)
        assert is_sinkless(adj, ori)

    def test_regular_graph(self):
        adj = random_regular_graph(30, 4, seed=2)
        ori = greedy_sinkless_orientation(adj, seed=3)
        assert is_sinkless(adj, ori)

    def test_reproducible(self):
        adj = cycle_graph(10)
        assert greedy_sinkless_orientation(adj, seed=7) == greedy_sinkless_orientation(
            adj, seed=7
        )


class TestTrialAndFix:
    def test_cycle_terminates_sinkless(self):
        adj = cycle_graph(10)
        orientation, rounds = run_trial_and_fix(adj, seed=1)
        assert is_sinkless(adj, orientation)
        assert rounds >= 2

    def test_regular_graph(self):
        adj = random_regular_graph(24, 4, seed=5)
        orientation, rounds = run_trial_and_fix(adj, seed=2)
        assert is_sinkless(adj, orientation)

    def test_higher_degree_converges_fast(self):
        adj = random_regular_graph(30, 6, seed=6)
        _, rounds = run_trial_and_fix(adj, seed=3)
        assert rounds <= 30
