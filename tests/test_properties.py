"""Cross-cutting property-based tests (hypothesis) on the paper's invariants.

These complement the per-module unit tests with randomized instance
generation: each property here is one of the load-bearing invariants of a
paper proof, checked over a distribution of instances rather than fixed
examples.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bipartite import (
    BLUE,
    RED,
    BipartiteInstance,
    random_left_regular,
    split_high_degree_left,
    trim_left_degrees,
)
from repro.core import (
    degree_rank_reduction_one,
    degree_rank_reduction_two,
    is_weak_splitting,
    shatter,
    solve_weak_splitting,
    weak_splitting_violations,
)
from repro.orientation import Multigraph, eulerian_orientation


@st.composite
def solvable_instances(draw):
    """Random instances inside the regimes the solver covers."""
    kind = draw(st.sampled_from(["dense", "low-rank"]))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    if kind == "dense":
        n_left = draw(st.integers(min_value=20, max_value=80))
        n_right = draw(st.integers(min_value=40, max_value=120))
        d = draw(st.integers(min_value=16, max_value=min(32, n_right)))
        return random_left_regular(n_left, n_right, d, seed=seed)
    # low-rank: delta >= 6r by construction
    from repro.bipartite import regular_bipartite

    r = draw(st.integers(min_value=2, max_value=4))
    d = 6 * r + draw(st.integers(min_value=0, max_value=6))
    n_left = draw(st.integers(min_value=20, max_value=50))
    n_right = n_left * d // r + (1 if (n_left * d) % r else 0)
    return regular_bipartite(n_left, max(n_right, d), d)


@st.composite
def multigraphs(draw):
    n = draw(st.integers(min_value=2, max_value=15))
    m = draw(st.integers(min_value=0, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    rng = random.Random(seed)
    edges = [(rng.randrange(n), rng.randrange(n)) for _ in range(m)]
    return Multigraph(n, edges)


class TestSolverProperties:
    @given(solvable_instances())
    @settings(max_examples=20, deadline=None)
    def test_solver_always_valid_in_covered_regimes(self, inst):
        coloring = solve_weak_splitting(inst, seed=0)
        assert not weak_splitting_violations(inst, coloring)

    @given(solvable_instances(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_solver_deterministic_given_seed(self, inst, seed):
        assert solve_weak_splitting(inst, seed=seed) == solve_weak_splitting(
            inst, seed=seed
        )


class TestTransformProperties:
    @given(
        st.integers(min_value=10, max_value=40),
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_trim_preserves_weak_splitting_upward(self, n_side, d, seed):
        """Any weak splitting of a trimmed graph splits the original —
        the monotonicity Lemma 2.2 rests on."""
        inst = random_left_regular(n_side, n_side * 2, d, seed=seed)
        target = max(2, d // 2)
        trimmed, _ = trim_left_degrees(inst, target)
        # Build a splitting of the trimmed graph by brute greedy per u.
        coloring = [None] * inst.n_right
        for u in range(trimmed.n_left):
            nbrs = trimmed.left_neighbors(u)
            if len(nbrs) >= 2:
                coloring[nbrs[0]] = RED
                coloring[nbrs[1]] = BLUE
        # Wherever the trimmed instance is satisfied, so is the original.
        full = [c if c is not None else RED for c in coloring]
        trimmed_bad = set(weak_splitting_violations(trimmed, full))
        original_bad = set(weak_splitting_violations(inst, full))
        assert original_bad <= trimmed_bad

    @given(
        st.integers(min_value=6, max_value=60),
        st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_virtual_split_partitions_edges(self, degree, delta):
        if degree < delta:
            return
        inst = BipartiteInstance(1, degree, [(0, v) for v in range(degree)])
        virtual, owner = split_high_degree_left(inst, delta=delta)
        # edges partition: every original neighbor appears exactly once
        seen = [v for j in range(virtual.n_left) for v in virtual.left_neighbors(j)]
        assert sorted(seen) == list(range(degree))
        assert all(o == 0 for o in owner)


class TestReductionProperties:
    @given(
        st.integers(min_value=10, max_value=40),
        st.integers(min_value=8, max_value=24),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_reduction_one_monotone_shrinkage(self, n_side, d, iters, seed):
        d = min(d, n_side)
        inst = random_left_regular(n_side, n_side, d, seed=seed)
        reduced, emap, trace = degree_rank_reduction_one(inst, eps=0.25, iterations=iters)
        # degrees never grow, edge count strictly shrinks (unless empty)
        assert all(a >= b for a, b in zip(trace.Deltas, trace.Deltas[1:]))
        assert all(a >= b for a, b in zip(trace.edge_counts, trace.edge_counts[1:]))
        assert len(set(emap)) == len(emap)  # edge map injective

    @given(
        st.integers(min_value=10, max_value=30),
        st.integers(min_value=4, max_value=16),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_reduction_two_exact_ceil_half(self, n_side, d, seed):
        d = min(d, n_side)
        inst = random_left_regular(n_side, n_side, d, seed=seed)
        reduced, _, _ = degree_rank_reduction_two(inst, eps=0.01, iterations=1)
        for v in range(inst.n_right):
            assert reduced.right_degree(v) == math.ceil(inst.right_degree(v) / 2)


class TestShatteringProperties:
    @given(
        st.integers(min_value=20, max_value=60),
        st.integers(min_value=4, max_value=20),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_shattering_invariants(self, n_side, d, seed):
        inst = random_left_regular(n_side, n_side, d, seed=seed)
        out = shatter(inst, seed=seed + 1)
        # (1) every constraint keeps >= 1/4 neighbors uncolored
        for u in range(inst.n_left):
            nbrs = inst.left_neighbors(u)
            assert sum(1 for v in nbrs if out.partial[v] is None) >= len(nbrs) / 4
        # (2) satisfied+unsatisfied partitions U
        assert len(out.unsatisfied) <= inst.n_left
        # (3) residual structure maps are consistent bijections
        assert len(set(out.residual_left_ids)) == out.residual.n_left
        assert len(set(out.residual_right_ids)) == out.residual.n_right


class TestOrientationProperties:
    @given(multigraphs())
    @settings(max_examples=50, deadline=None)
    def test_eulerian_flow_conservation(self, g):
        """Global in = out = |E| minus self-loop bookkeeping."""
        ori = eulerian_orientation(g)
        total_in = sum(ori.in_degree(v) for v in range(g.n))
        total_out = sum(ori.out_degree(v) for v in range(g.n))
        assert total_in == total_out == g.n_edges

    @given(multigraphs())
    @settings(max_examples=50, deadline=None)
    def test_eulerian_even_nodes_perfectly_balanced(self, g):
        ori = eulerian_orientation(g)
        for v in range(g.n):
            if g.degree(v) % 2 == 0:
                assert ori.discrepancy(v) == 0
            else:
                assert ori.discrepancy(v) == 1
