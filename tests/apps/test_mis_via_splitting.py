"""Tests for the Lemma 4.2 MIS pipeline."""

import pytest

from repro.apps import mis_via_splitting
from repro.bipartite.generators import random_regular_graph, random_simple_graph
from repro.mis import is_mis, mis_lower_bound
from tests.conftest import cycle_graph, path_graph


class TestMisPipeline:
    def test_valid_on_dense_graph(self):
        adj = random_simple_graph(400, 0.5, seed=1)
        res = mis_via_splitting(adj, seed=2, eps=0.2)
        assert is_mis(adj, res.mis)

    def test_splitting_engages_on_dense_graph(self):
        adj = random_simple_graph(500, 0.6, seed=3)
        res = mis_via_splitting(adj, seed=4, eps=0.2)
        assert res.splits >= 1

    def test_valid_on_sparse_graph(self):
        adj = random_simple_graph(200, 0.03, seed=5)
        res = mis_via_splitting(adj, seed=6)
        assert is_mis(adj, res.mis)

    def test_path_and_cycle(self):
        for adj in (path_graph(20), cycle_graph(21)):
            res = mis_via_splitting(adj, seed=7)
            assert is_mis(adj, res.mis)

    def test_empty_graph(self):
        res = mis_via_splitting([], seed=8)
        assert res.mis == set()

    def test_isolated_nodes_included(self):
        adj = [[], [2], [1], []]
        res = mis_via_splitting(adj, seed=9)
        assert {0, 3} <= res.mis

    def test_lemma_43_size_bound(self):
        adj = random_regular_graph(200, 10, seed=10)
        res = mis_via_splitting(adj, seed=11)
        assert len(res.mis) >= mis_lower_bound(200, 10)

    def test_heavy_history_recorded(self):
        adj = random_simple_graph(400, 0.5, seed=12)
        res = mis_via_splitting(adj, seed=13, eps=0.2)
        assert res.heavy_history and res.heavy_history[0] > 0

    def test_reproducible(self):
        adj = random_simple_graph(150, 0.2, seed=14)
        a = mis_via_splitting(adj, seed=15)
        b = mis_via_splitting(adj, seed=15)
        assert a.mis == b.mis

    def test_derandomized_method_on_dense(self):
        adj = random_simple_graph(500, 0.6, seed=16)
        res = mis_via_splitting(adj, seed=17, method="derandomized", eps=0.2)
        assert is_mis(adj, res.mis)
