"""Tests for the Lemma 4.1 coloring pipeline."""

import pytest

from repro.apps import coloring_via_splitting
from repro.bipartite.generators import random_regular_graph, random_simple_graph
from repro.coloring import is_proper_coloring
from repro.local import RoundLedger


class TestColoringPipeline:
    def test_proper_on_dense_graph(self):
        adj = random_regular_graph(400, 160, seed=1)
        res = coloring_via_splitting(adj, seed=2)
        assert is_proper_coloring(adj, res.colors)

    def test_splitting_engages_on_dense_graph(self):
        adj = random_regular_graph(400, 160, seed=3)
        res = coloring_via_splitting(adj, seed=4)
        assert res.levels >= 1

    def test_palette_below_greedy_bound(self):
        """The whole point: far fewer than 2^levels * (Delta+1) colors."""
        adj = random_regular_graph(400, 160, seed=5)
        res = coloring_via_splitting(adj, seed=6)
        assert res.num_colors <= (1.5) * (res.Delta + 1)

    def test_sparse_graph_skips_to_direct_coloring(self):
        adj = random_simple_graph(100, 0.05, seed=7)
        res = coloring_via_splitting(adj, seed=8)
        assert res.levels == 0
        assert is_proper_coloring(adj, res.colors)

    def test_leaf_degrees_recorded(self):
        adj = random_regular_graph(300, 120, seed=9)
        res = coloring_via_splitting(adj, seed=10)
        assert len(res.leaf_degrees) == 2 ** res.levels or res.levels == 0

    def test_ledger_collects_both_phases(self):
        adj = random_regular_graph(300, 120, seed=11)
        led = RoundLedger()
        res = coloring_via_splitting(adj, ledger=led, seed=12)
        if res.levels:
            assert "slocal-conversion" in led.breakdown()
        assert "(d+1)-coloring" in led.breakdown()

    def test_random_method(self):
        adj = random_regular_graph(300, 120, seed=13)
        res = coloring_via_splitting(adj, seed=14, method="random")
        assert is_proper_coloring(adj, res.colors)

    def test_palette_ratio_property(self):
        adj = random_regular_graph(200, 80, seed=15)
        res = coloring_via_splitting(adj, seed=16)
        assert res.palette_ratio == res.num_colors / (res.Delta + 1)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            coloring_via_splitting([])

    def test_single_node(self):
        res = coloring_via_splitting([[]])
        assert res.colors == [0] and res.num_colors == 1
