"""Tests for the defective 2-coloring variant (footnote 2)."""

import pytest

from repro.apps import (
    defective_two_coloring,
    defective_violations,
    is_defective_two_coloring,
    min_constrained_degree,
)
from repro.bipartite import BLUE, RED
from repro.bipartite.generators import random_regular_graph
from repro.core import UniformSplittingSpec, is_uniform_splitting
from tests.conftest import cycle_graph


class TestVerifier:
    def test_balanced_ok(self):
        adj = cycle_graph(4)
        spec = UniformSplittingSpec(eps=0.3, min_constrained_degree=2)
        assert is_defective_two_coloring(adj, [RED, RED, BLUE, BLUE], spec)

    def test_monochromatic_clique_flagged(self):
        adj = [[1, 2], [0, 2], [0, 1]]
        spec = UniformSplittingSpec(eps=0.1, min_constrained_degree=2)
        assert defective_violations(adj, [RED, RED, RED], spec) == [0, 1, 2]

    def test_weaker_than_uniform(self):
        """A coloring can be defective-valid yet fail uniform splitting:
        all neighbors in the OTHER color is fine defectively."""
        adj = cycle_graph(4)
        spec = UniformSplittingSpec(eps=0.1, min_constrained_degree=2)
        alternating = [RED, BLUE, RED, BLUE]  # every neighbor other-colored
        assert is_defective_two_coloring(adj, alternating, spec)
        assert not is_uniform_splitting(adj, alternating, spec)

    def test_uncolored_node_skipped(self):
        adj = cycle_graph(3)
        spec = UniformSplittingSpec(eps=0.1, min_constrained_degree=2)
        assert is_defective_two_coloring(adj, [None, RED, RED], spec) is False or True
        # node 0 skipped; nodes 1, 2 are mutually same-colored with 1 of 2
        bad = defective_violations(adj, [None, RED, RED], spec)
        assert 0 not in bad


class TestSolver:
    def test_valid_on_dense_graph(self):
        adj = random_regular_graph(300, 140, seed=1)
        eps = 0.2
        spec = UniformSplittingSpec(
            eps=eps, min_constrained_degree=min_constrained_degree(300, eps)
        )
        partition = defective_two_coloring(adj, spec)
        assert is_defective_two_coloring(adj, partition, spec)

    def test_uniform_implies_defective(self):
        """Constructive form of the footnote's 'weaker than' claim."""
        from repro.apps import uniform_splitting

        adj = random_regular_graph(300, 140, seed=2)
        eps = 0.2
        spec = UniformSplittingSpec(
            eps=eps, min_constrained_degree=min_constrained_degree(300, eps)
        )
        partition = uniform_splitting(adj, spec)
        assert is_defective_two_coloring(adj, partition, spec)
