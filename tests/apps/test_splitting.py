"""Tests for the Section 4 uniform splitting engine."""

import pytest

from repro.apps import attach_clique_gadgets, min_constrained_degree, uniform_splitting
from repro.bipartite import BLUE, RED
from repro.bipartite.generators import random_regular_graph, random_simple_graph
from repro.core import UniformSplittingSpec, is_uniform_splitting
from repro.derand import DerandomizationError
from repro.local import RoundLedger


@pytest.fixture(scope="module")
def dense_graph():
    return random_regular_graph(400, 160, seed=1)


def spec_for(adj, eps):
    n = len(adj)
    return UniformSplittingSpec(eps=eps, min_constrained_degree=min_constrained_degree(n, eps))


class TestMinConstrainedDegree:
    def test_decreases_in_eps(self):
        assert min_constrained_degree(1000, 0.3) < min_constrained_degree(1000, 0.1)

    def test_grows_with_n(self):
        assert min_constrained_degree(10**6, 0.2) > min_constrained_degree(100, 0.2)

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            min_constrained_degree(100, 0.5)


class TestDerandomizedSplitting:
    def test_valid(self, dense_graph):
        spec = spec_for(dense_graph, 0.2)
        part = uniform_splitting(dense_graph, spec, method="derandomized")
        assert is_uniform_splitting(dense_graph, part, spec)

    def test_every_node_colored(self, dense_graph):
        spec = spec_for(dense_graph, 0.2)
        part = uniform_splitting(dense_graph, spec)
        assert all(c in (RED, BLUE) for c in part)

    def test_rounds_charged(self, dense_graph):
        spec = spec_for(dense_graph, 0.2)
        led = RoundLedger()
        uniform_splitting(dense_graph, spec, ledger=led)
        assert "slocal-conversion" in led.breakdown()

    def test_uncertifiable_raises(self):
        adj = random_simple_graph(100, 0.1, seed=2)  # degrees ~10, too thin
        spec = UniformSplittingSpec(eps=0.05, min_constrained_degree=8)
        with pytest.raises(DerandomizationError):
            uniform_splitting(adj, spec, method="derandomized")

    def test_unconstrained_graph_trivial(self):
        adj = random_simple_graph(30, 0.1, seed=3)
        spec = UniformSplittingSpec(eps=0.1, min_constrained_degree=1000)
        part = uniform_splitting(adj, spec)
        assert is_uniform_splitting(adj, part, spec)


class TestRandomSplitting:
    def test_valid_las_vegas(self, dense_graph):
        spec = spec_for(dense_graph, 0.2)
        part = uniform_splitting(dense_graph, spec, method="random", seed=4)
        assert is_uniform_splitting(dense_graph, part, spec)

    def test_reproducible(self, dense_graph):
        spec = spec_for(dense_graph, 0.2)
        a = uniform_splitting(dense_graph, spec, method="random", seed=5)
        b = uniform_splitting(dense_graph, spec, method="random", seed=5)
        assert a == b

    def test_unknown_method_rejected(self, dense_graph):
        with pytest.raises(ValueError):
            uniform_splitting(dense_graph, spec_for(dense_graph, 0.2), method="magic")


class TestCliqueGadgets:
    def test_min_degree_lifted(self):
        adj = [[1], [0], [], [0]]
        # make symmetric: 0-1, 0-3
        adj = [[1, 3], [0], [], [0]]
        new_adj, n0 = attach_clique_gadgets(adj, delta=4)
        assert n0 == 4
        assert min(len(x) for x in new_adj) >= 2  # clique members have delta-1 >= 3... of clique
        for v in range(n0):
            assert len(new_adj[v]) >= 4

    def test_high_degree_nodes_untouched(self):
        adj = [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]]
        new_adj, n0 = attach_clique_gadgets(adj, delta=3)
        assert len(new_adj) == 4  # no gadgets added

    def test_original_neighborhoods_preserved(self):
        adj = [[1], [0]]
        new_adj, _ = attach_clique_gadgets(adj, delta=3)
        assert set(new_adj[0]) >= {1}
        assert set(new_adj[1]) >= {0}

    def test_gadget_graph_symmetric(self):
        adj = [[1], [0], []]
        new_adj, _ = attach_clique_gadgets(adj, delta=3)
        for u, nbrs in enumerate(new_adj):
            for v in nbrs:
                assert u in new_adj[v]
