#!/usr/bin/env python3
"""Scenario: (1 + o(1))∆ vertex coloring via repeated splitting (Lemma 4.1).

This is the application that motivates splitting in the paper's
introduction: recursively split a graph into balanced halves, then color
the low-degree leaf subgraphs with disjoint palettes.  The palette ends up
close to ∆ + 1 — far below the 2∆-ish cost of naive recursive halving
without the balance guarantee.

Run:  python examples/coloring_pipeline.py
"""

from repro import RoundLedger, random_regular_graph
from repro.apps import coloring_via_splitting
from repro.coloring import is_proper_coloring


def main() -> None:
    for n, d in ((300, 128), (400, 160), (500, 240)):
        adj = random_regular_graph(n, d, seed=n)
        ledger = RoundLedger()
        result = coloring_via_splitting(adj, ledger=ledger, seed=n)
        assert is_proper_coloring(adj, result.colors)
        print(
            f"n={n:4d}  Delta={d:4d}  split levels={result.levels}  "
            f"palette={result.num_colors:4d}  palette/(Delta+1)={result.palette_ratio:.3f}  "
            f"rounds={ledger.total:,.0f}"
        )
    print("\nLemma 4.1 guarantees palette <= (1 + o(1)) * Delta; the ratio column")
    print("must therefore stay bounded near 1 (greedy leaf colorings on random")
    print("graphs land well below the Delta+1 worst case, hence ratios < 1).")


if __name__ == "__main__":
    main()
