#!/usr/bin/env python3
"""Scenario: the lower-bound reduction of Figure 1 / Theorem 2.10.

Weak splitting is at least as hard as sinkless orientation: given any graph
G of minimum degree >= 5, the paper builds a rank-2 weak splitting instance
whose solutions convert directly into sinkless orientations of G.  This
script runs that construction end to end and verifies no node is a sink.

Run:  python examples/sinkless_orientation.py
"""

from repro import random_regular_graph, solve_weak_splitting
from repro.core import (
    deterministic_lower_bound_rounds,
    orientation_from_weak_splitting,
    randomized_lower_bound_rounds,
    weak_splitting_instance_from_graph,
)
from repro.orientation import is_sinkless, sinks


def main() -> None:
    n, d = 120, 8
    adj = random_regular_graph(n, d, seed=7)
    print(f"source graph G: {n} nodes, {d}-regular")

    inst, edge_list = weak_splitting_instance_from_graph(adj)
    print(
        f"reduction instance B: |U|={inst.n_left}, |V|={inst.n_right} "
        f"(= |E_G|), rank={inst.rank}, delta={inst.delta}"
    )

    # These instances live in the paper's *hard* regime (rank 2, tiny δ):
    # no efficient LOCAL algorithm is known — that is exactly the theorem.
    # We solve centrally with the verified heuristic path.
    coloring = solve_weak_splitting(inst, method="heuristic", seed=1)

    orientation = orientation_from_weak_splitting(edge_list, coloring)
    assert is_sinkless(adj, orientation)
    print(f"orientation is sinkless: {not sinks(adj, orientation)}")

    print("\nimplied LOCAL lower bounds for weak splitting (constants 1):")
    print(f"  randomized    Omega(log_D log n) = {randomized_lower_bound_rounds(d, inst.n):.2f}")
    print(f"  deterministic Omega(log_D n)     = {deterministic_lower_bound_rounds(d, inst.n):.2f}")


if __name__ == "__main__":
    main()
