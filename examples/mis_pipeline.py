#!/usr/bin/env python3
"""Scenario: MIS via splitting-driven heavy-node elimination (Lemma 4.2).

The Section 4.2 pipeline: repeatedly halve the degrees of the dense part of
the graph with uniform splittings, run an MIS on the resulting low-degree
active graph, remove the covered nodes, and repeat — then compare against
plain Luby.

Run:  python examples/mis_pipeline.py
"""

from repro import random_simple_graph
from repro.apps import mis_via_splitting
from repro.mis import is_mis, luby_mis, mis_lower_bound


def main() -> None:
    n, p = 500, 0.6
    adj = random_simple_graph(n, p, seed=11)
    Delta = max(len(x) for x in adj)
    print(f"graph: G({n}, {p}) with Delta = {Delta}")

    result = mis_via_splitting(adj, seed=12, eps=0.2)
    assert is_mis(adj, result.mis)
    print(f"\nsplitting pipeline:")
    print(f"  |MIS| = {len(result.mis)} (Lemma 4.3 floor: {mis_lower_bound(n, Delta):.1f})")
    print(f"  heavy-elimination phases = {result.phases}, uniform splits = {result.splits}")
    print(f"  heavy nodes per phase    = {result.heavy_history}")

    luby_set, luby_rounds = luby_mis(adj, seed=13)
    assert is_mis(adj, luby_set)
    print(f"\nplain Luby baseline: |MIS| = {len(luby_set)} in {luby_rounds} simulated rounds")


if __name__ == "__main__":
    main()
