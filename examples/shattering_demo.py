#!/usr/bin/env python3
"""Scenario: graph shattering (Theorem 1.2's randomized algorithm).

Shows the two-phase structure explicitly: a constant-round random coloring
satisfies almost every constraint; the few survivors form tiny connected
components that the deterministic algorithm mops up in parallel.

Run:  python examples/shattering_demo.py
"""

from repro import RoundLedger, is_weak_splitting, random_left_regular
from repro.core import randomized_weak_splitting, shatter


def main() -> None:
    inst = random_left_regular(n_left=2000, n_right=2000, d=20, seed=3)
    print(f"instance: {inst}")

    # Phase view: run the shattering once and inspect the residual.
    outcome = shatter(inst, seed=4)
    sizes = sorted(outcome.residual_component_sizes(), reverse=True)
    print(f"\nafter the O(1)-round shattering:")
    print(f"  unsatisfied constraints : {len(outcome.unsatisfied)} / {inst.n_left}")
    print(f"  uncolored variables     : {len(outcome.uncolored)} / {inst.n_right}")
    print(f"  residual components     : {len(sizes)} (largest {sizes[0] if sizes else 0} nodes)")

    # Full pipeline: shattering + deterministic finish per component.
    ledger = RoundLedger()
    coloring = randomized_weak_splitting(inst, seed=5, ledger=ledger)
    assert is_weak_splitting(inst, coloring)
    print(f"\nfull Theorem 1.2 pipeline: valid splitting in {ledger.total:,.0f} rounds")
    for label, rounds in ledger.breakdown().items():
        print(f"  {label:<24} {rounds:>10.1f}")


if __name__ == "__main__":
    main()
