#!/usr/bin/env python3
"""Scenario: the hypergraph lens on weak splitting.

The paper reads B = (U ∪ V, E) as a hypergraph: U is the vertex set, every
variable node is a hyperedge over its neighbors, and the rank r is the
maximum hyperedge size.  Weak splitting = 2-color the *hyperedges* so every
vertex lies in a hyperedge of each color.

This script builds a random low-rank hypergraph directly, solves weak
splitting through the conversion, and reads the answer back in hypergraph
terms.

Run:  python examples/hypergraph_view.py
"""

import random

from repro import BLUE, RED, solve_weak_splitting
from repro.bipartite import Hypergraph
from repro.core import is_weak_splitting


def main() -> None:
    rng = random.Random(5)
    n_vertices, rank = 80, 3
    # Enough random hyperedges of size <= 3 that delta >= 6r holds.
    edges = []
    for _ in range(n_vertices * 14):
        k = rng.randint(2, rank)
        edges.append(tuple(rng.sample(range(n_vertices), k)))
    hg = Hypergraph(n_vertices, edges)
    print(f"hypergraph: {hg}, min vertex degree = {hg.min_vertex_degree()}")

    inst = hg.to_bipartite()
    print(f"bipartite view: {inst}  (delta >= 6r: {inst.delta >= 6 * inst.rank})")

    coloring = solve_weak_splitting(inst, seed=6)
    assert is_weak_splitting(inst, coloring)

    reds = sum(1 for c in coloring if c == RED)
    print(f"\nhyperedge coloring: {reds} red / {hg.n_edges - reds} blue")
    # Read the guarantee back in hypergraph terms for a few vertices.
    for v in range(3):
        incident = [j for j, e in enumerate(hg.edges) if v in e]
        colors = {("red" if coloring[j] == RED else "blue") for j in incident}
        print(f"  vertex {v}: {len(incident)} hyperedges, colors seen = {sorted(colors)}")


if __name__ == "__main__":
    main()
