#!/usr/bin/env python3
"""Scenario: watch the [GHK16] derandomization at work, step by step.

The engine behind every deterministic result in the paper is the method of
conditional expectations: a pessimistic estimator upper-bounds the expected
number of violated constraints under random completion; each variable
greedily picks the color that does not increase it; if the estimator starts
below 1 it ends below 1, and since the final value *counts* violations,
there are none.

Run:  python examples/derandomization_tour.py
"""

from repro import random_left_regular
from repro.core import is_weak_splitting, weak_splitting_min_degree
from repro.derand import WeakSplittingEstimator


def main() -> None:
    inst = random_left_regular(n_left=150, n_right=150, d=20, seed=1)
    print(f"instance: {inst}  (2 log n = {weak_splitting_min_degree(inst.n):.1f})")

    est = WeakSplittingEstimator(inst)
    print(f"\ninitial estimator value  Phi_0 = {est.value():.6f}  (< 1: success certified)")
    print("union bound form: |U| * 2 * 2^-delta =", f"{inst.n_left * 2 * 0.5**inst.delta:.6f}")

    coloring = [None] * inst.n_right
    checkpoints = {0, 1, 10, 50, 100, inst.n_right - 1}
    for v in range(inst.n_right):
        gains = [est.gain(v, c) for c in (0, 1)]
        c = est.best_color(v)
        est.commit(v, c)
        coloring[v] = c
        if v in checkpoints:
            print(
                f"  step {v:3d}: gains (red, blue) = ({gains[0]:+.2e}, {gains[1]:+.2e})"
                f"  -> color {'red' if c == 0 else 'blue'}, Phi = {est.value():.6f}"
            )

    print(f"\nfinal estimator value = {est.value():.6f} -> violations = {est.violations()}")
    assert is_weak_splitting(inst, coloring)
    print("coloring verified: a valid weak splitting, found without any randomness")


if __name__ == "__main__":
    main()
