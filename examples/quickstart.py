#!/usr/bin/env python3
"""Quickstart: build a splitting instance, solve it, inspect the cost.

Weak splitting (Definition 1.1 of the paper): color the variable nodes V of
a bipartite graph B = (U ∪ V, E) red/blue so every constraint node in U
sees both colors.  The library's façade picks the right algorithm from the
paper for your instance's parameter regime.

Run:  python examples/quickstart.py
"""

from repro import (
    RED,
    RoundLedger,
    is_weak_splitting,
    random_left_regular,
    solve_weak_splitting,
)


def main() -> None:
    # An instance with 500 constraints and 500 variables; every constraint
    # watches 24 random variables.  n = 1000, so delta = 24 >= 2 log n and
    # the deterministic Theorem 2.5 pipeline applies.
    inst = random_left_regular(n_left=500, n_right=500, d=24, seed=0)
    print(f"instance: {inst}")

    ledger = RoundLedger()
    coloring = solve_weak_splitting(inst, ledger=ledger)

    assert is_weak_splitting(inst, coloring)
    reds = sum(1 for c in coloring if c == RED)
    print(f"valid weak splitting: {reds} red / {len(coloring) - reds} blue variables")

    print(f"\nLOCAL rounds charged: {ledger.total:.0f}")
    for label, rounds in ledger.breakdown().items():
        print(f"  {label:<24} {rounds:>10.1f}")


if __name__ == "__main__":
    main()
